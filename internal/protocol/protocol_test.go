package protocol

import (
	"sync"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Solving D is the expensive part of this package's tests; share one copy.
var (
	dOnce  sync.Once
	dTable *rel.Table
	dStats constraint.Stats
	dErr   error
)

func directoryTable(t testing.TB) (*rel.Table, constraint.Stats) {
	t.Helper()
	dOnce.Do(func() {
		var spec *constraint.Spec
		spec, dErr = BuildDirectorySpec()
		if dErr != nil {
			return
		}
		dTable, dStats, dErr = constraint.Solve(spec)
	})
	if dErr != nil {
		t.Fatal(dErr)
	}
	return dTable, dStats
}

func TestMessageCatalogScale(t *testing.T) {
	// F1: "Around 50 different types of messages are used in the
	// protocol."
	n := len(Messages())
	if n < 45 || n > 55 {
		t.Fatalf("catalog has %d messages, want around 50", n)
	}
}

func TestMessageClassesAndLookup(t *testing.T) {
	if !IsRequest("readex") || !IsRequest("sinv") || !IsRequest("mread") {
		t.Fatal("request classification broken")
	}
	if !IsResponse("idone") || !IsResponse("compl") || !IsResponse("retry") {
		t.Fatal("response classification broken")
	}
	if IsRequest("idone") || IsResponse("readex") || IsRequest("nosuch") {
		t.Fatal("negative classification broken")
	}
	if !CarriesData("data") || CarriesData("compl") {
		t.Fatal("data classification broken")
	}
	m, ok := LookupMessage("wb")
	if !ok || m.Class != Request || !m.Data {
		t.Fatalf("LookupMessage(wb) = %+v, %v", m, ok)
	}
	if len(RequestNames())+len(ResponseNames()) != len(Messages()) {
		t.Fatal("class partition broken")
	}
	names := MessageNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("MessageNames not sorted or has duplicates")
		}
	}
}

func TestRegisterFuncs(t *testing.T) {
	funcs := map[string]sqlmini.Func{}
	RegisterFuncs(func(name string, fn sqlmini.Func) {
		funcs[name] = fn
	})
	for _, name := range []string{"isrequest", "isresponse", "carriesdata", "isbusy"} {
		if funcs[name] == nil {
			t.Fatalf("%s not registered", name)
		}
	}
	v, err := funcs["isrequest"]([]rel.Value{rel.S("readex")})
	if err != nil || !v.Bool() {
		t.Fatalf("isrequest(readex) = %v, %v", v, err)
	}
	v, err = funcs["isrequest"]([]rel.Value{rel.Null()})
	if err != nil || v.Bool() {
		t.Fatalf("isrequest(NULL) = %v, %v", v, err)
	}
	if _, err := funcs["isbusy"](nil); err == nil {
		t.Fatal("wrong arity must error")
	}
	v, err = funcs["isbusy"]([]rel.Value{rel.S("Busy-rx-sd")})
	if err != nil || !v.Bool() {
		t.Fatalf("isbusy = %v, %v", v, err)
	}
}

func TestBusyStateCatalog(t *testing.T) {
	// C2: "includes around 40 Busy states".
	states := BusyStates()
	if len(states) != 40 {
		t.Fatalf("busy states = %d, want 40", len(states))
	}
	seen := map[string]bool{}
	for _, s := range states {
		if seen[s] {
			t.Fatalf("duplicate busy state %s", s)
		}
		seen[s] = true
		if !IsBusyState(s) {
			t.Fatalf("IsBusyState(%s) = false", s)
		}
		if BusyTxn(s) == "" || BusyPending(s) == "" {
			t.Fatalf("busy state %s does not parse", s)
		}
	}
	if IsBusyState("MESI") || IsBusyState("I") {
		t.Fatal("stable states misclassified as busy")
	}
	if BusyState("rx", "sd") != "Busy-rx-sd" {
		t.Fatal("BusyState naming broken")
	}
	if BusyTxn("Busy-rx-sd") != "rx" || BusyPending("Busy-rx-sd") != "sd" {
		t.Fatal("busy state parsing broken")
	}
	if TxnRequest("rx") != "readex" || TxnRequest("zz") != "" {
		t.Fatal("TxnRequest broken")
	}
	if len(SortedBusyStates()) != 40 {
		t.Fatal("SortedBusyStates lost states")
	}
}

func TestTableDScale(t *testing.T) {
	// C2: "This table is made of 30 columns and 500 rows and includes
	// around 40 Busy states and considers all transaction interleavings."
	d, stats := directoryTable(t)
	if d.NumCols() != 30 {
		t.Fatalf("D has %d columns, want 30", d.NumCols())
	}
	if d.NumRows() < 400 || d.NumRows() > 600 {
		t.Fatalf("D has %d rows, want around 500", d.NumRows())
	}
	if stats.Rows != d.NumRows() {
		t.Fatal("stats mismatch")
	}
	// Every busy state appears as an observed input state.
	used := map[string]bool{}
	for i := 0; i < d.NumRows(); i++ {
		if v := d.Get(i, "bdirst"); !v.IsNull() && IsBusyState(v.Str()) {
			used[v.Str()] = true
		}
	}
	for _, b := range BusyStates() {
		if !used[b] {
			t.Errorf("busy state %s never observed in D", b)
		}
	}
}

func TestTableDNoDeadRows(t *testing.T) {
	// Every row must take some action: emit a message or update a
	// directory structure.
	d, _ := directoryTable(t)
	for i := 0; i < d.NumRows(); i++ {
		if d.Get(i, "locmsg").IsNull() && d.Get(i, "remmsg").IsNull() &&
			d.Get(i, "memmsg").IsNull() && d.Get(i, "dirupd").IsNull() &&
			d.Get(i, "bdirupd").IsNull() {
			t.Fatalf("dead row %d: %v", i, d.RawRow(i))
		}
	}
}

func TestTableDMessageColumnsConsistent(t *testing.T) {
	// A message output column is NULL iff its src/dest/rsrc columns are.
	d, _ := directoryTable(t)
	for i := 0; i < d.NumRows(); i++ {
		for _, p := range []string{"locmsg", "remmsg", "memmsg"} {
			isNull := d.Get(i, p).IsNull()
			for _, suffix := range []string{"src", "dest", "rsrc"} {
				if d.Get(i, p+suffix).IsNull() != isNull {
					t.Fatalf("row %d: %s set but %s%s inconsistent", i, p, p, suffix)
				}
			}
		}
	}
}

func TestFigure2ReadExFlowRows(t *testing.T) {
	// F2/F3: the published readex transaction at D. From SI, sinv and
	// mread are issued in parallel and the entry waits in Busy-sd; data
	// moves it to Busy-s, the last idone to Busy-d; completion sets MESI
	// and transfers ownership (repl).
	d, _ := directoryTable(t)
	find := func(pred func(r rel.Row) bool) rel.Row {
		t.Helper()
		got := d.Select(pred)
		if got.NumRows() != 1 {
			t.Fatalf("expected exactly one matching row, got %d", got.NumRows())
		}
		return got.Row(0)
	}
	// Request row (Fig. 2 steps 1-2).
	req := find(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("readex")) && r.Get("dirst").Equal(rel.S(DirSI))
	})
	if !req.Get("remmsg").Equal(rel.S("sinv")) || !req.Get("memmsg").Equal(rel.S("mread")) {
		t.Fatalf("readex@SI must send sinv and mread: %v", req.Values())
	}
	if !req.Get("nxtbdirst").Equal(rel.S("Busy-rx-sd")) {
		t.Fatalf("readex@SI must enter Busy-sd: %v", req.Get("nxtbdirst"))
	}
	// Busy-sd --data--> Busy-s.
	dataRow := find(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("mdata")) && r.Get("bdirst").Equal(rel.S("Busy-rx-sd"))
	})
	if !dataRow.Get("nxtbdirst").Equal(rel.S("Busy-rx-s")) {
		t.Fatalf("Busy-sd + data must move to Busy-s: %v", dataRow.Get("nxtbdirst"))
	}
	// Busy-sd --idone(last)--> Busy-d.
	idoneRow := find(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("idone")) &&
			r.Get("bdirst").Equal(rel.S("Busy-rx-sd")) &&
			r.Get("bdirpv").Equal(rel.S(PVOne))
	})
	if !idoneRow.Get("nxtbdirst").Equal(rel.S("Busy-rx-d")) {
		t.Fatalf("Busy-sd + last idone must move to Busy-d: %v", idoneRow.Get("nxtbdirst"))
	}
	// Completion: directory updated to MESI with ownership transfer.
	doneRow := find(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("mdata")) && r.Get("bdirst").Equal(rel.S("Busy-rx-d"))
	})
	if !doneRow.Get("nxtdirst").Equal(rel.S(DirMESI)) || !doneRow.Get("nxtdirpv").Equal(rel.S(PVRepl)) {
		t.Fatalf("readex completion must set MESI/repl: %v", doneRow.Values())
	}
	if !doneRow.Get("locmsg").Equal(rel.S("datax")) {
		t.Fatalf("readex completion must send exclusive data: %v", doneRow.Get("locmsg"))
	}
}

func TestSection42DependencyRowExists(t *testing.T) {
	// §4.2 R2: the directory processes an idone and emits an mread — the
	// readex-against-modified-owner race.
	d, _ := directoryTable(t)
	got := d.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("idone")) &&
			r.Get("inmsgsrc").Equal(rel.S(RoleRemote)) &&
			r.Get("memmsg").Equal(rel.S("mread"))
	})
	if got.Empty() {
		t.Fatal("no idone -> mread row in D; the §4.2 dependency cannot arise")
	}
}

func TestRetryDiscipline(t *testing.T) {
	// §4.3 invariant 2 precondition: every request that hits the busy
	// directory is answered with retry, and only those.
	d, _ := directoryTable(t)
	for i := 0; i < d.NumRows(); i++ {
		msg := d.Get(i, "inmsg").Str()
		if !IsRequest(msg) {
			continue
		}
		busyHit := d.Get(i, "bdirhit").Equal(rel.S("hit"))
		isRetry := d.Get(i, "locmsg").Equal(rel.S("retry"))
		if busyHit && !isRetry {
			t.Fatalf("row %d: request %s at busy line not retried", i, msg)
		}
		if !busyHit && isRetry {
			t.Fatalf("row %d: request %s retried with no conflict", i, msg)
		}
	}
}

func TestDeallocAlwaysOnCompl(t *testing.T) {
	// §4.3 invariant 2: "a busy directory entry is de-allocated only when
	// a transaction completes" — in this protocol, exactly on a compl.
	d, _ := directoryTable(t)
	for i := 0; i < d.NumRows(); i++ {
		if d.Get(i, "bdiralloc").Equal(rel.S("dealloc")) {
			if !d.Get(i, "inmsg").Equal(rel.S("compl")) {
				t.Fatalf("row %d deallocates on %v, not compl", i, d.Get(i, "inmsg"))
			}
		}
	}
}

func TestEightControllerTables(t *testing.T) {
	// C6: "A total of 8 controller database tables were automatically
	// generated."
	specs, err := BuildAllSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("controllers = %d, want 8", len(specs))
	}
	for name, s := range specs {
		if name == DirectoryTable {
			continue // solved separately (expensive), checked above
		}
		tab, _, err := constraint.Solve(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tab.Empty() {
			t.Fatalf("%s generated empty", name)
		}
		// No dead rows in any controller: at least one output column set.
		outs := map[string]bool{}
		for _, c := range s.OutputNames() {
			outs[c] = true
		}
		for i := 0; i < tab.NumRows(); i++ {
			alive := false
			for c := range outs {
				if !tab.Get(i, c).IsNull() {
					alive = true
					break
				}
			}
			if !alive {
				t.Fatalf("%s row %d is dead: %v", name, i, tab.RawRow(i))
			}
		}
	}
}

func TestMemoryControllerR1Row(t *testing.T) {
	// §4.2 R1: (wb, home, home) in -> (compl, home, home) out at M.
	spec, err := BuildMemorySpec()
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := constraint.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("wb")) &&
			r.Get("bankst").Equal(rel.S("ready")) &&
			r.Get("dirmsg").Equal(rel.S("compl"))
	})
	if got.NumRows() != 1 {
		t.Fatalf("wb -> compl rows = %d, want 1", got.NumRows())
	}
}

func TestCacheControllerMESI(t *testing.T) {
	spec, err := BuildCacheSpec()
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := constraint.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	check := func(msg, st, outCol, outVal, nxt string) {
		t.Helper()
		got := c.Select(func(r rel.Row) bool {
			return r.Get("inmsg").Equal(rel.S(msg)) && r.Get("cachest").Equal(rel.S(st))
		})
		if got.NumRows() != 1 {
			t.Fatalf("%s@%s rows = %d", msg, st, got.NumRows())
		}
		if !got.Get(0, outCol).Equal(rel.S(outVal)) || !got.Get(0, "nxtcachest").Equal(rel.S(nxt)) {
			t.Fatalf("%s@%s: %s=%v nxt=%v, want %s/%s",
				msg, st, outCol, got.Get(0, outCol), got.Get(0, "nxtcachest"), outVal, nxt)
		}
	}
	check("prread", "I", "busmsg", "read", "IS_d")
	check("prwrite", "S", "busmsg", "upgrade", "SM_w")
	check("sinv", "M", "snpmsg", "swbdata", "I")
	check("sinv", "MI_w", "snpmsg", "idone", "II_s") // the §4.2 race
	check("sread", "M", "snpmsg", "sdata", "S")
	check("data", "IS_d", "prresp", "pdata", "S")
	check("retry", "IM_d", "prresp", "pstall", "I")
}

func TestChannelAssignments(t *testing.T) {
	for _, name := range AssignmentNames() {
		v, err := BuildAssignment(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Empty() || v.NumCols() != 4 {
			t.Fatalf("%s: V is %dx%d", name, v.NumRows(), v.NumCols())
		}
		// Every (m, s, d) appears at most once.
		seen := map[string]bool{}
		for i := 0; i < v.NumRows(); i++ {
			k := v.Get(i, "m").Str() + "/" + v.Get(i, "s").Str() + "/" + v.Get(i, "d").Str()
			if seen[k] {
				t.Fatalf("%s: duplicate assignment %s", name, k)
			}
			seen[k] = true
		}
	}
	if _, err := BuildAssignment("nope"); err == nil {
		t.Fatal("unknown assignment must error")
	}
}

func TestAssignmentStory(t *testing.T) {
	// The §4.2 narrative encoded in the three variants.
	initial, _ := BuildAssignment(AssignInitial)
	vc4, _ := BuildAssignment(AssignVC4)
	fixed, _ := BuildAssignment(AssignFixed)

	chanOf := func(v *rel.Table, m, s, d string) string {
		got := v.Select(func(r rel.Row) bool {
			return r.Get("m").Equal(rel.S(m)) && r.Get("s").Equal(rel.S(s)) && r.Get("d").Equal(rel.S(d))
		})
		if got.Empty() {
			return ""
		}
		return got.Get(0, "v").Str()
	}
	if chanOf(initial, "mread", RoleHome, RoleHome) != VC0 {
		t.Fatal("initial: dir->mem must share VC0")
	}
	if chanOf(vc4, "mread", RoleHome, RoleHome) != VC4 || chanOf(vc4, "wb", RoleHome, RoleHome) != VC4 {
		t.Fatal("vc4: dir->mem must ride VC4")
	}
	if chanOf(vc4, "compl", RoleHome, RoleHome) != VC2 {
		t.Fatal("vc4: memory compl must ride VC2 (Fig. 4)")
	}
	if chanOf(fixed, "mread", RoleHome, RoleHome) != "" {
		t.Fatal("fixed: mread must be off the channel graph (dedicated path)")
	}
	if chanOf(fixed, "compl", RoleLocal, RoleHome) != VC5 {
		t.Fatal("fixed: final compl must ride VC5")
	}
}

func TestFigure1Table(t *testing.T) {
	f1 := Figure1Table()
	if f1.NumRows() != len(Messages()) {
		t.Fatal("Figure 1 table row count")
	}
	got := f1.Select(func(r rel.Row) bool { return r.Get("message").Equal(rel.S("readex")) })
	if got.NumRows() != 1 || !got.Get(0, "class").Equal(rel.S("request")) {
		t.Fatalf("readex row: %s", got)
	}
}

func TestPVAndStateCatalogs(t *testing.T) {
	if len(DirStates()) != 3 || len(PVEncodings()) != 3 || len(PVOps()) != 6 {
		t.Fatal("state catalogs wrong")
	}
	if len(CacheStates()) != 4 || len(CacheTransients()) != 5 {
		t.Fatal("cache state catalogs wrong")
	}
	if len(Roles()) != 3 || len(QueueNames()) != 6 {
		t.Fatal("role/queue catalogs wrong")
	}
	if len(TxnTags()) != 15 {
		t.Fatalf("txn tags = %d", len(TxnTags()))
	}
}
