package protocol

import (
	"coherdb/internal/constraint"
)

// The directory controller table D (§2.1, §3): 30 columns — four message
// columns each with source/destination/resource columns, the directory and
// busy-directory lookup results and states, and the next-state and
// allocation/update outputs.
//
// Input columns (10):
//
//	inmsg, inmsgsrc, inmsgdest, inmsgrsrc  — the incoming message
//	bdirhit, bdirst, bdirpv                — busy directory lookup + entry
//	dirhit, dirst, dirpv                   — directory lookup + entry
//
// Output columns (20):
//
//	locmsg/src/dest/rsrc  — response toward the requesting (local) node
//	remmsg/src/dest/rsrc  — snoop or forward toward remote node(s)
//	memmsg/src/dest/rsrc  — access to the home memory controller
//	nxtdirst, nxtdirpv, diralloc, dirupd       — directory update
//	nxtbdirst, nxtbdirpv, bdiralloc, bdirupd   — busy directory update
const (
	DirectoryTable = "D"
)

// dirInputMessages lists the message types the directory controller accepts.
func dirInputMessages() []string {
	return []string{
		// requests from the local node
		"read", "readex", "upgrade", "readinv", "wb", "pwb", "flush",
		"replhint", "prefetch", "ioread", "iowrite", "ucread", "ucwrite",
		"fetchadd", "sync", "intr",
		// snoop responses from remote nodes
		"idone", "sdone", "sdata", "swbdata", "intrack",
		// memory responses from the home memory controller
		"mdata", "mdone",
		// completion: from home memory for a forwarded wb, and from the
		// local requestor to close a transaction's -c state (§4.3)
		"compl",
	}
}

// cacheableRequests are the requests that consult the directory (carry a
// cache-line address tracked by the directory).
func cacheableRequests() []string {
	return []string{"read", "readex", "upgrade", "readinv", "wb", "pwb", "flush", "replhint", "prefetch"}
}

// uncachedRequests are memory/I/O requests that bypass the directory entry
// but still serialize through the busy directory.
func uncachedRequests() []string {
	return []string{"ioread", "iowrite", "ucread", "ucwrite", "fetchadd"}
}

// specialRequests neither consult the directory nor conflict on addresses.
func specialRequests() []string { return []string{"sync", "intr"} }

// addressedBusyStates returns the busy states that occupy a line address —
// every busy state except the sync and interrupt families.
func addressedBusyStates() []string {
	var out []string
	for _, b := range BusyStates() {
		if t := BusyTxn(b); t != "sy" && t != "in" {
			out = append(out, b)
		}
	}
	return out
}

// uncachedBusyStates returns the busy states of the uncached / I/O / atomic
// transaction families, the only ones an uncached request can conflict with.
func uncachedBusyStates() []string {
	var out []string
	for _, b := range BusyStates() {
		switch BusyTxn(b) {
		case "ior", "iow", "ucr", "ucw", "at":
			out = append(out, b)
		}
	}
	return out
}

// BuildDirectorySpec constructs the constraint specification for table D.
// Solving it with constraint.Solve yields the full directory controller
// table (~30 columns × ~450-500 rows, 40 busy states).
func BuildDirectorySpec() (*constraint.Spec, error) {
	s := constraint.NewSpec(DirectoryTable)
	RegisterFuncs(s.RegisterFunc)

	// ---- input columns --------------------------------------------------
	inMsgs := dirInputMessages()
	if err := s.AddColumn(constraint.Column{Name: "inmsg", Kind: constraint.Input, Values: inMsgs, NoNull: true}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "inmsgsrc", Kind: constraint.Input, Values: Roles(), NoNull: true}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "inmsgdest", Kind: constraint.Input, Values: []string{RoleHome}, NoNull: true}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "inmsgrsrc", Kind: constraint.Input, Values: []string{QReq, QResp}, NoNull: true}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "bdirhit", Kind: constraint.Input, Values: []string{"hit", "miss"}, NoNull: true}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "bdirst", Kind: constraint.Input, Values: append([]string{DirI}, BusyStates()...)}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "bdirpv", Kind: constraint.Input, Values: PVEncodings()}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "dirhit", Kind: constraint.Input, Values: []string{"hit", "miss"}}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "dirst", Kind: constraint.Input, Values: DirStates()}); err != nil {
		return nil, err
	}
	if err := s.AddColumn(constraint.Column{Name: "dirpv", Kind: constraint.Input, Values: PVEncodings()}); err != nil {
		return nil, err
	}

	// ---- output columns -------------------------------------------------
	locResponses := []string{
		"data", "datax", "compl", "retry", "nack", "upgack", "wbcompl",
		"flcompl", "iodata", "iocompl", "ucdata", "uccompl", "atdata",
		"pfdata", "syncack", "intrack", "replack",
	}
	addOut := func(name string, vals ...string) error {
		return s.AddColumn(constraint.Column{Name: name, Kind: constraint.Output, Values: vals})
	}
	outCols := []struct {
		name string
		vals []string
	}{
		{"locmsg", locResponses},
		{"locmsgsrc", []string{RoleHome}},
		{"locmsgdest", []string{RoleLocal}},
		{"locmsgrsrc", []string{QLoc}},
		{"remmsg", []string{"sinv", "sread", "sflush", "intr"}},
		{"remmsgsrc", []string{RoleHome}},
		{"remmsgdest", []string{RoleRemote}},
		{"remmsgrsrc", []string{QRem}},
		{"memmsg", []string{"mread", "mwrite", "mrmw", "mwrpart", "wb"}},
		{"memmsgsrc", []string{RoleHome}},
		{"memmsgdest", []string{RoleHome}},
		{"memmsgrsrc", []string{QMem}},
		{"nxtdirst", DirStates()},
		{"nxtdirpv", PVOps()},
		{"diralloc", []string{"alloc", "dealloc"}},
		{"dirupd", []string{"upd"}},
		{"nxtbdirst", append([]string{DirI}, BusyStates()...)},
		{"nxtbdirpv", []string{PVLoad, PVDec}},
		{"bdiralloc", []string{"alloc", "dealloc"}},
		{"bdirupd", []string{"upd"}},
	}
	for _, c := range outCols {
		if err := addOut(c.name, c.vals...); err != nil {
			return nil, err
		}
	}

	// ---- per-column input constraints (early pruning, paper §3) ---------
	snoopResponses := []string{"idone", "sdone", "sdata", "swbdata", "intrack"}
	s.MustConstrain("inmsgsrc",
		in("inmsg", snoopResponses...)+` ? inmsgsrc = "remote" : `+
			in("inmsg", "mdata", "mdone")+` ? inmsgsrc = "home" : `+
			// compl closes a transaction (from local) or completes a
			// forwarded wb (from home memory).
			`inmsg = "compl" ? `+in("inmsgsrc", RoleLocal, RoleHome)+` : inmsgsrc = "local"`)
	s.MustConstrain("inmsgrsrc",
		`isrequest(inmsg) ? inmsgrsrc = "reqq" : inmsgrsrc = "respq"`)
	s.MustConstrain("bdirhit",
		`isresponse(inmsg) ? bdirhit = "hit" : bdirhit <> NULL`)
	s.MustConstrain("bdirst", bdirstConstraint())
	s.MustConstrain("bdirpv",
		// Only invalidation responses are counted; an idone from a lone
		// owner (w states) always finds a count of one.
		`inmsg = "idone" and `+in("bdirst", BusyState("rx", "w"), BusyState("ri", "w"))+
			` ? bdirpv = "one" : inmsg = "idone" ? `+in("bdirpv", PVOne, PVGone)+` : bdirpv = NULL`)
	s.MustConstrain("dirhit",
		all(`isrequest(inmsg)`, eq("bdirhit", "miss"), in("inmsg", cacheableRequests()...))+
			` ? dirhit <> NULL : dirhit = NULL`)
	s.MustConstrain("dirst",
		`dirhit = "hit" ? `+in("dirst", DirSI, DirMESI)+` : dirhit = "miss" ? dirst = "I" : dirst = NULL`)
	s.MustConstrain("dirpv",
		`dirst = "I" ? dirpv = "zero" : dirst = "SI" ? dirpv = "gone" : dirst = "MESI" ? dirpv = "one" : dirpv = NULL`)

	// ---- transition rules -> output constraints --------------------------
	rs := DirectoryRules()
	if err := rs.CompileInto(s, "", outputNames(outCols)); err != nil {
		return nil, err
	}
	return s, nil
}

func outputNames(cols []struct {
	name string
	vals []string
}) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.name
	}
	return out
}

// respBusyStates maps each response message the directory accepts to the
// busy states at which it is legal. complStates/complHomeStates split the
// two compl sources.
func respBusyStates() map[string][]string {
	complStates := []string{}
	for _, txn := range TxnTags() {
		complStates = append(complStates, BusyState(txn, "c"))
	}
	return map[string][]string{
		"mdata": {
			BusyState("rd", "d"),
			BusyState("rx", "sd"), BusyState("rx", "d"),
			BusyState("ri", "sd"), BusyState("ri", "d"),
			BusyState("pf", "d"), BusyState("ior", "d"), BusyState("ucr", "d"),
			BusyState("at", "dm"), BusyState("at", "d"),
		},
		"mdone": {
			BusyState("pw", "m"), BusyState("fl", "m"),
			BusyState("iow", "m"), BusyState("ucw", "m"),
			BusyState("at", "dm"), BusyState("at", "m"),
		},
		"idone": {
			BusyState("rx", "sd"), BusyState("rx", "s"), BusyState("rx", "w"),
			BusyState("ri", "sd"), BusyState("ri", "s"), BusyState("ri", "w"),
			BusyState("ug", "s"),
			BusyState("fl", "s"),
		},
		"sdone":   {BusyState("rd", "w")},
		"sdata":   {BusyState("rd", "w"), BusyState("fl", "sm")},
		"swbdata": {BusyState("rd", "w"), BusyState("rx", "w"), BusyState("ri", "w"), BusyState("fl", "sm")},
		"intrack": {BusyState("in", "a")},
		"compl":   complStates, // from local; the wb-m case is handled separately
	}
}

// bdirstConstraint builds the busy-directory state constraint: which busy
// states each incoming message may legally observe.
func bdirstConstraint() string {
	respStates := respBusyStates()
	expr := ""
	// compl from the home memory controller completes a forwarded wb; from
	// the local node it closes a transaction's -c state.
	expr += all(eq("inmsg", "compl"), eq("inmsgsrc", RoleHome)) +
		" ? " + eq("bdirst", BusyState("wb", "m")) + " : "
	for _, m := range []string{"mdata", "mdone", "idone", "sdone", "sdata", "swbdata", "intrack", "compl"} {
		expr += eq("inmsg", m) + " ? " + in("bdirst", respStates[m]...) + " : "
	}
	// Requests: a busy hit on a cacheable request observes the concrete
	// conflicting busy state (all transaction interleavings, §3); an
	// uncached request conflicts with the uncached/atomic families; a
	// busy hit on a special request retries regardless (dontcare); a
	// busy miss observes I.
	expr += all(eq("bdirhit", "hit"), in("inmsg", cacheableRequests()...)) +
		" ? " + in("bdirst", addressedBusyStates()...) + " : " +
		all(eq("bdirhit", "hit"), in("inmsg", uncachedRequests()...)) +
		" ? " + in("bdirst", uncachedBusyStates()...) + " : " +
		eq("bdirhit", "hit") + ` ? bdirst = NULL : bdirst = "I"`
	return expr
}
