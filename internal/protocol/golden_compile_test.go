package protocol

import (
	"math/rand"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// goldenSpecs gathers every controller spec the compiled kernels must stay
// faithful on: the eight directory-protocol controllers plus the Fig. 3
// fragment the solver benchmarks sweep.
func goldenSpecs(t *testing.T) map[string]*constraint.Spec {
	t.Helper()
	out, err := BuildAllSpecs()
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := Figure3FragmentSpec(2)
	if err != nil {
		t.Fatal(err)
	}
	out["figure3"] = fig3
	return out
}

// TestCompiledConstraintsMatchInterpreter is the golden equivalence check
// of the constraint-compilation layer: for every constraint of every
// controller spec, the compiled predicate must agree with the tree-walking
// Evaluator.True on randomly sampled environments drawn from the column
// domains — including the sweep-compiled form driven the way the solver
// drives it (one cache generation per base row, last referenced column
// swept across its domain).
func TestCompiledConstraintsMatchInterpreter(t *testing.T) {
	const samples = 150
	rng := rand.New(rand.NewSource(42))
	for name, spec := range goldenSpecs(t) {
		cols := spec.Columns()
		colIdx := spec.ColumnIndex()
		domains := make([][]rel.Value, len(cols))
		for i, c := range cols {
			domains[i] = c.Domain()
		}
		ev := spec.Evaluator()
		for _, col := range spec.ColumnNames() {
			e := spec.Constraint(col)
			if e == nil {
				continue
			}
			pred, err := ev.Compile(e, colIdx)
			if err != nil {
				t.Fatalf("%s.%s: compile: %v", name, col, err)
			}
			// Sweep compilation around the constraint's last referenced
			// column, exactly as the solver schedules it.
			sweep := colIdx[col]
			for ref := range sqlmini.Columns(e) {
				if p, ok := colIdx[ref]; ok && p > sweep {
					sweep = p
				}
			}
			prog, err := ev.CompileSweep(e, colIdx, sweep)
			if err != nil {
				t.Fatalf("%s.%s: compile sweep: %v", name, col, err)
			}
			inst := prog.Instance()

			row := make([]rel.Value, len(cols))
			env := make(sqlmini.MapEnv, len(cols))
			for s := 0; s < samples; s++ {
				for i := range cols {
					row[i] = domains[i][rng.Intn(len(domains[i]))]
					env[cols[i].Name] = row[i]
				}
				inst.NextRow()
				for _, v := range domains[sweep] {
					row[sweep] = v
					env[cols[sweep].Name] = v
					want, werr := ev.True(e, env)
					got, gerr := pred(row)
					if (werr == nil) != (gerr == nil) || got != want {
						t.Fatalf("%s.%s on %v: interpreter (%v, %v), compiled (%v, %v)\nconstraint: %s",
							name, col, row, want, werr, got, gerr, e)
					}
					sgot, serr := prog.Eval(inst, row)
					if (werr == nil) != (serr == nil) || sgot != want {
						t.Fatalf("%s.%s on %v: interpreter (%v, %v), sweep-compiled (%v, %v)\nconstraint: %s",
							name, col, row, want, werr, sgot, serr, e)
					}
				}
			}
		}
	}
}
