package check

import (
	"fmt"
	"strings"

	"coherdb/internal/protocol"
)

// quoteList renders values for an IN list.
func quoteList(vals []string) string {
	quoted := make([]string, len(vals))
	for i, v := range vals {
		quoted[i] = "'" + v + "'"
	}
	return strings.Join(quoted, ", ")
}

// ProtocolSuite builds the full static checking suite over the eight
// controller tables (the paper reports "all of the protocol invariants
// (around 50)").
func ProtocolSuite() *Suite {
	s := NewSuite()
	addPaperInvariants(s)
	addDirectoryFamily(s)
	addBusyFamilyInvariants(s)
	addDeterminism(s)
	addMessageDiscipline(s)
	addControllerInvariants(s)
	return s
}

// addPaperInvariants adds the invariants published verbatim in §4.3
// (modulo the paper's typographical conjunction/disjunction garbling, which
// is restored to the evident intent).
func addPaperInvariants(s *Suite) {
	// Invariant 1: the directory state and presence vector are consistent
	// — exactly one owner under MESI, one or more sharers under SI, none
	// under I.
	s.Add(Invariant{
		Name: "dir-pv-consistent",
		Desc: "directory state and presence vector agree",
		Ref:  "§4.3 (1)",
		SQL: `SELECT dirst, dirpv FROM D WHERE
			(dirst = 'MESI' AND NOT dirpv = 'one') OR
			(dirst = 'SI' AND NOT dirpv = 'gone') OR
			(dirst = 'I' AND NOT dirpv = 'zero')`,
	})
	// Invariant 2: mutual exclusion between the busy directory and the
	// directory: a line is in one structure or the other, never both.
	s.Add(Invariant{
		Name: "dir-bdir-exclusive",
		Desc: "a line is never simultaneously in the directory and the busy directory",
		Ref:  "§4.3 (2)",
		SQL:  `SELECT dirst, bdirst FROM D WHERE NOT dirst = 'I' AND NOT bdirst = 'I'`,
	})
	// Invariant 3a: D serializes requests to the same address — a request
	// that finds the line busy is always answered with a retry.
	s.Add(Invariant{
		Name: "busy-request-retried",
		Desc: "requests to a busy line are retried",
		Ref:  "§4.3 (3)",
		SQL: `SELECT inmsg, bdirst, locmsg FROM D WHERE
			isrequest(inmsg) AND bdirhit = 'hit' AND
			(locmsg IS NULL OR NOT locmsg = 'retry')`,
	})
	// Invariant 3b: a busy directory entry is de-allocated only when the
	// transaction completes — D receives a compl response, or it sends
	// one (a completion response) to the requestor.
	s.Add(Invariant{
		Name: "dealloc-only-on-compl",
		Desc: "busy entries are freed only at transaction completion",
		Ref:  "§4.3 (3)",
		SQL: `SELECT inmsg, bdirst, nxtbdirst, locmsg FROM D WHERE
			bdiralloc = 'dealloc' AND NOT inmsg = 'compl' AND NOT locmsg = 'compl'`,
	})
}

// addDirectoryFamily completes the directory table family: structural
// discipline the paper checks "similarly" for the remaining properties.
func addDirectoryFamily(s *Suite) {
	// Retries are issued only under conflict.
	s.Add(Invariant{
		Name: "retry-only-when-busy",
		Desc: "a retry is only issued to a request that hit the busy directory",
		Ref:  "family",
		SQL:  `SELECT inmsg, bdirhit FROM D WHERE locmsg = 'retry' AND NOT bdirhit = 'hit'`,
	})
	// Requests arrive on the request queue, responses on the response
	// queue.
	s.Add(Invariant{
		Name: "request-on-reqq",
		Desc: "requests are consumed from the request queue",
		Ref:  "family",
		SQL:  `SELECT inmsg, inmsgrsrc FROM D WHERE isrequest(inmsg) AND NOT inmsgrsrc = 'reqq'`,
	})
	s.Add(Invariant{
		Name: "response-on-respq",
		Desc: "responses are consumed from the response queue",
		Ref:  "family",
		SQL:  `SELECT inmsg, inmsgrsrc FROM D WHERE isresponse(inmsg) AND NOT inmsgrsrc = 'respq'`,
	})
	// Responses are only processed against an existing busy entry.
	s.Add(Invariant{
		Name: "response-needs-busy",
		Desc: "a response always finds a busy entry",
		Ref:  "family",
		SQL:  `SELECT inmsg, bdirhit FROM D WHERE isresponse(inmsg) AND NOT bdirhit = 'hit'`,
	})
	// Allocation starts from a free entry; de-allocation from a busy one.
	s.Add(Invariant{
		Name: "alloc-from-free",
		Desc: "busy entries are allocated only when none exists",
		Ref:  "family",
		SQL:  `SELECT inmsg, bdirst FROM D WHERE bdiralloc = 'alloc' AND NOT bdirst = 'I'`,
	})
	s.Add(Invariant{
		Name: "dealloc-from-busy",
		Desc: "busy entries are freed only while one exists",
		Ref:  "family",
		SQL:  `SELECT inmsg, bdirst FROM D WHERE bdiralloc = 'dealloc' AND NOT isbusy(bdirst)`,
	})
	s.Add(Invariant{
		Name: "alloc-targets-busy",
		Desc: "allocation enters a busy state",
		Ref:  "family",
		SQL:  `SELECT inmsg, nxtbdirst FROM D WHERE bdiralloc = 'alloc' AND NOT isbusy(nxtbdirst)`,
	})
	s.Add(Invariant{
		Name: "dealloc-targets-free",
		Desc: "de-allocation returns the entry to I",
		Ref:  "family",
		SQL:  `SELECT inmsg, nxtbdirst FROM D WHERE bdiralloc = 'dealloc' AND NOT nxtbdirst = 'I'`,
	})
	// Update flags accompany state changes and vice versa.
	s.Add(Invariant{
		Name: "bdirupd-consistent",
		Desc: "busy-directory writes are flagged exactly when something changes",
		Ref:  "family",
		SQL: `SELECT inmsg, bdirst, nxtbdirst FROM D WHERE
			(bdirupd = 'upd' AND nxtbdirst IS NULL AND nxtbdirpv IS NULL) OR
			(bdirupd IS NULL AND (nxtbdirst IS NOT NULL OR nxtbdirpv IS NOT NULL))`,
	})
	s.Add(Invariant{
		Name: "dirupd-consistent",
		Desc: "directory writes are flagged exactly when something changes",
		Ref:  "family",
		SQL: `SELECT inmsg, nxtdirst, nxtdirpv FROM D WHERE
			(dirupd = 'upd' AND nxtdirst IS NULL AND nxtdirpv IS NULL) OR
			(dirupd IS NULL AND (nxtdirst IS NOT NULL OR nxtdirpv IS NOT NULL))`,
	})
	// Counting: pending-invalidation decrements happen only on idone,
	// and a completion triggered by an idone requires the count to drain.
	s.Add(Invariant{
		Name: "dec-only-on-idone",
		Desc: "pending-snoop count decrements only on an idone",
		Ref:  "family",
		SQL:  `SELECT inmsg FROM D WHERE nxtbdirpv = 'dec' AND NOT inmsg = 'idone'`,
	})
	s.Add(Invariant{
		Name: "idone-gone-keeps-waiting",
		Desc: "an idone with sharers remaining never completes the transaction",
		Ref:  "§2.1",
		SQL: `SELECT inmsg, bdirst, bdirpv, locmsg FROM D WHERE
			inmsg = 'idone' AND bdirpv = 'gone' AND locmsg IS NOT NULL`,
	})
	// Output classification.
	s.Add(Invariant{
		Name: "locmsg-is-response",
		Desc: "messages to the local node are responses",
		Ref:  "family",
		SQL:  `SELECT locmsg FROM D WHERE locmsg IS NOT NULL AND NOT isresponse(locmsg)`,
	})
	s.Add(Invariant{
		Name: "remmsg-is-request",
		Desc: "messages to remote nodes are (snoop) requests",
		Ref:  "family",
		SQL:  `SELECT remmsg FROM D WHERE remmsg IS NOT NULL AND NOT isrequest(remmsg)`,
	})
	s.Add(Invariant{
		Name: "memmsg-is-request",
		Desc: "messages to the memory controller are requests",
		Ref:  "family",
		SQL:  `SELECT memmsg FROM D WHERE memmsg IS NOT NULL AND NOT isrequest(memmsg)`,
	})
	// Message column groups are set together.
	for _, p := range []string{"locmsg", "remmsg", "memmsg"} {
		s.Add(Invariant{
			Name: p + "-triple-consistent",
			Desc: p + " and its source/destination/resource columns are set together",
			Ref:  "family",
			SQL: fmt.Sprintf(`SELECT %[1]s, %[1]ssrc, %[1]sdest, %[1]srsrc FROM D WHERE
				(%[1]s IS NOT NULL AND (%[1]ssrc IS NULL OR %[1]sdest IS NULL OR %[1]srsrc IS NULL)) OR
				(%[1]s IS NULL AND (%[1]ssrc IS NOT NULL OR %[1]sdest IS NOT NULL OR %[1]srsrc IS NOT NULL))`, p),
		})
	}
	// Exclusive data is granted only by exclusive transactions.
	s.Add(Invariant{
		Name: "datax-only-readex",
		Desc: "exclusive data grants come only from readex transactions",
		Ref:  "family",
		SQL: `SELECT locmsg, bdirst FROM D WHERE locmsg = 'datax' AND
			NOT bdirst IN ('Busy-rx-s', 'Busy-rx-d', 'Busy-rx-w')`,
	})
	// Ownership transfer accompanies exclusive grants, for both the
	// data-carrying grant and the upgrade grant.
	s.Add(Invariant{
		Name: "datax-transfers-ownership",
		Desc: "an exclusive grant sets MESI and replaces the presence vector",
		Ref:  "family",
		SQL: `SELECT locmsg, nxtdirst, nxtdirpv FROM D WHERE locmsg = 'datax' AND
			(NOT nxtdirst = 'MESI' OR NOT nxtdirpv = 'repl')`,
	})
	s.Add(Invariant{
		Name: "upgack-transfers-ownership",
		Desc: "an upgrade grant sets MESI and replaces the presence vector",
		Ref:  "family",
		SQL: `SELECT locmsg, nxtdirst, nxtdirpv FROM D WHERE locmsg = 'upgack' AND
			(NOT nxtdirst = 'MESI' OR NOT nxtdirpv = 'repl')`,
	})
}

// addBusyFamilyInvariants adds one invariant per transaction family: a busy
// entry never jumps between transaction types.
func addBusyFamilyInvariants(s *Suite) {
	for _, txn := range protocol.TxnTags() {
		var family []string
		for _, b := range protocol.BusyStates() {
			if protocol.BusyTxn(b) == txn {
				family = append(family, b)
			}
		}
		s.Add(Invariant{
			Name: "busy-family-" + txn,
			Desc: fmt.Sprintf("a %s busy entry stays in its family until freed", protocol.TxnRequest(txn)),
			Ref:  "family",
			SQL: fmt.Sprintf(`SELECT bdirst, nxtbdirst FROM D WHERE
				bdirst IN (%s) AND nxtbdirst IS NOT NULL AND
				NOT nxtbdirst = 'I' AND NOT nxtbdirst IN (%s)`,
				quoteList(family), quoteList(family)),
		})
	}
}

// addDeterminism adds the controller-determinism invariants: every input
// combination of a controller table selects exactly one row, so hardware
// lookup is a function.
func addDeterminism(s *Suite) {
	inputCols := map[string]string{
		"D": "inmsg, inmsgsrc, inmsgdest, inmsgrsrc, bdirhit, bdirst, bdirpv, dirhit, dirst, dirpv",
		"M": "inmsg, inmsgsrc, inmsgdest, inmsgrsrc, bankst",
		"C": "inmsg, inmsgsrc, inmsgdest, inmsgrsrc, cachest",
		"N": "inmsg, inmsgsrc, inmsgdest, inmsgrsrc, mshrst",
	}
	for _, tab := range []string{"D", "M", "C", "N"} {
		cols := inputCols[tab]
		s.Add(Invariant{
			Name: "deterministic-" + tab,
			Desc: "every input combination of " + tab + " selects exactly one row",
			Ref:  "family",
			SQL: fmt.Sprintf(
				`SELECT %s, COUNT(*) AS n FROM %s GROUP BY %s HAVING COUNT(*) > 1`,
				cols, tab, cols),
		})
	}
}

// addMessageDiscipline adds cross-cutting role/channel discipline checks.
func addMessageDiscipline(s *Suite) {
	s.Add(Invariant{
		Name: "locmsg-toward-local",
		Desc: "local responses flow home -> local",
		Ref:  "family",
		SQL: `SELECT locmsgsrc, locmsgdest FROM D WHERE locmsg IS NOT NULL AND
			(NOT locmsgsrc = 'home' OR NOT locmsgdest = 'local')`,
	})
	s.Add(Invariant{
		Name: "remmsg-toward-remote",
		Desc: "snoops flow home -> remote",
		Ref:  "family",
		SQL: `SELECT remmsgsrc, remmsgdest FROM D WHERE remmsg IS NOT NULL AND
			(NOT remmsgsrc = 'home' OR NOT remmsgdest = 'remote')`,
	})
	s.Add(Invariant{
		Name: "memmsg-stays-home",
		Desc: "memory accesses stay within the home quad",
		Ref:  "family",
		SQL: `SELECT memmsgsrc, memmsgdest FROM D WHERE memmsg IS NOT NULL AND
			(NOT memmsgsrc = 'home' OR NOT memmsgdest = 'home')`,
	})
}

// addControllerInvariants adds the per-controller checks for the seven
// remaining tables.
func addControllerInvariants(s *Suite) {
	// M: every memory access is answered.
	s.Add(Invariant{
		Name: "mem-always-answers",
		Desc: "the memory controller answers every access",
		Ref:  "family",
		SQL:  `SELECT inmsg, bankst FROM M WHERE dirmsg IS NULL`,
	})
	s.Add(Invariant{
		Name: "mem-read-returns-data",
		Desc: "a ready memory read returns data",
		Ref:  "family",
		SQL:  `SELECT inmsg, dirmsg FROM M WHERE inmsg = 'mread' AND bankst = 'ready' AND NOT dirmsg = 'mdata'`,
	})
	s.Add(Invariant{
		Name: "mem-wb-returns-compl",
		Desc: "a forwarded writeback is answered with compl (§4.2 R1)",
		Ref:  "§4.2",
		SQL:  `SELECT inmsg, dirmsg FROM M WHERE inmsg = 'wb' AND bankst = 'ready' AND NOT dirmsg = 'compl'`,
	})
	// C: snoop obligations.
	s.Add(Invariant{
		Name: "cache-snoop-answered",
		Desc: "the cache answers every snoop it accepts",
		Ref:  "family",
		SQL:  `SELECT inmsg, cachest FROM C WHERE inmsg IN ('sinv', 'sread', 'sflush') AND snpmsg IS NULL`,
	})
	s.Add(Invariant{
		Name: "cache-sinv-invalidates",
		Desc: "a stable line hit by sinv ends invalid",
		Ref:  "family",
		SQL: `SELECT cachest, nxtcachest FROM C WHERE inmsg = 'sinv' AND
			cachest IN ('M', 'E', 'S') AND NOT nxtcachest = 'I'`,
	})
	s.Add(Invariant{
		Name: "cache-dirty-data-never-lost",
		Desc: "a modified line leaving the cache always carries data",
		Ref:  "family",
		SQL: `SELECT inmsg, cachest, snpmsg FROM C WHERE cachest = 'M' AND
			inmsg IN ('sinv', 'sread', 'sflush') AND NOT carriesdata(snpmsg)`,
	})
	s.Add(Invariant{
		Name: "cache-no-silent-m-drop",
		Desc: "a modified line is never evicted without a writeback",
		Ref:  "family",
		SQL: `SELECT inmsg, busmsg FROM C WHERE cachest = 'M' AND
			inmsg IN ('previct', 'prflush') AND NOT busmsg = 'wb'`,
	})
	// N: MSHR life cycle and the final compl.
	s.Add(Invariant{
		Name: "node-completion-closes",
		Desc: "the node interface closes completed transactions with compl",
		Ref:  "§4.3",
		SQL: `SELECT inmsg, netmsg FROM N WHERE mshrst = 'pending' AND
			inmsg IN ('data', 'datax', 'upgack', 'wbcompl', 'flcompl') AND NOT netmsg = 'compl'`,
	})
	s.Add(Invariant{
		Name: "node-no-double-issue",
		Desc: "a pending MSHR never injects a second request",
		Ref:  "family",
		SQL: `SELECT inmsg, netmsg FROM N WHERE mshrst = 'pending' AND
			isrequest(inmsg) AND netmsg IS NOT NULL`,
	})
	// R: RAC discipline.
	s.Add(Invariant{
		Name: "rac-snoop-answered",
		Desc: "the RAC answers every snoop it accepts",
		Ref:  "family",
		SQL:  `SELECT inmsg, racst FROM R WHERE inmsg IN ('sinv', 'sread', 'sflush') AND snpmsg IS NULL`,
	})
	s.Add(Invariant{
		Name: "rac-dirty-data-never-lost",
		Desc: "a modified RAC line leaving always carries data",
		Ref:  "family",
		SQL: `SELECT inmsg, racst, snpmsg FROM R WHERE racst = 'M' AND
			inmsg IN ('sinv', 'sflush') AND NOT carriesdata(snpmsg)`,
	})
	// IO / INT / SY: request-response pairing.
	s.Add(Invariant{
		Name: "io-request-answered",
		Desc: "the I/O bridge answers or forwards every request",
		Ref:  "family",
		SQL:  `SELECT inmsg, iost FROM IO WHERE isrequest(inmsg) AND netmsg IS NULL AND devresp IS NULL`,
	})
	s.Add(Invariant{
		Name: "int-request-answered",
		Desc: "the interrupt controller answers or forwards every event",
		Ref:  "family",
		SQL:  `SELECT inmsg, intst FROM INT WHERE netmsg IS NULL AND cpuresp IS NULL`,
	})
	s.Add(Invariant{
		Name: "sync-request-answered",
		Desc: "the sync controller answers or forwards every event",
		Ref:  "family",
		SQL:  `SELECT inmsg, syncst FROM SY WHERE netmsg IS NULL AND cpuresp IS NULL`,
	})
}
