package check

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"coherdb/internal/delta"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Baseline persistence: a fully-passing invariant run is summarized to a
// small cache file keyed by a hash of the invariant specs and the decoded
// contents of every table they read. A later process whose hash matches
// can skip the baseline run entirely — the first -incremental check of a
// session then costs as little as a no-op delta. The cache also carries
// the suite's serialized delta.Graph, so the dependency extraction
// (SQL → input columns) is not repeated either.
//
// Soundness: the hash covers exactly the inputs the skipped invariants
// read (value-level, so it is independent of dictionary code assignment
// and process history). Invariants whose SQL could not be analyzed have
// unknown inputs and are never carried over — LoadBaseline leaves them to
// RunDelta, which re-checks them unconditionally.

// baselineFile is the on-disk cache format.
type baselineFile struct {
	Hash       string          `json:"hash"`
	Invariants []string        `json:"invariants"`
	Graph      json.RawMessage `json:"graph"`
}

// DependencyGraph exports the suite's invariant→inputs mapping as a
// delta.Graph (analyzable invariants only).
func (s *Suite) DependencyGraph() *delta.Graph {
	g := delta.NewGraph()
	ins := s.inputSets()
	for i, inv := range s.invs {
		if ins[i] != nil {
			g.Add(inv.Name, ins[i]...)
		}
	}
	return g
}

// RestoreInputs primes the suite's dependency cache from a persisted
// graph, bypassing SQL analysis. Invariants absent from the graph keep a
// nil (always-dirty) input list.
func (s *Suite) RestoreInputs(g *delta.Graph) {
	ins := make([][]delta.Input, len(s.invs))
	for i, inv := range s.invs {
		ins[i] = g.Inputs(inv.Name)
	}
	s.inputs = ins
}

// SpecHash fingerprints everything a carried-over result depends on: each
// invariant's name and SQL, and the name, schema and decoded cell values
// of every table the analyzable invariants read. FNV-1a over value keys,
// so it compares across processes regardless of interning order.
func SpecHash(db *sqlmini.DB, s *Suite) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b []byte) {
		for _, c := range b {
			h = (h ^ uint64(c)) * prime
		}
		h = (h ^ 0xff) * prime
	}
	ins := s.inputSets()
	tables := map[string]bool{}
	for i, inv := range s.invs {
		mix([]byte(inv.Name))
		mix([]byte(inv.SQL))
		for _, in := range ins[i] {
			tables[in.Table] = true
		}
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var key []byte
	for _, name := range names {
		mix([]byte(name))
		t, ok := db.Table(name)
		if !ok {
			mix([]byte("!missing"))
			continue
		}
		for _, col := range t.ColumnsRef() {
			mix([]byte(col))
		}
		for i := 0; i < t.NumRows(); i++ {
			for j := 0; j < t.NumCols(); j++ {
				key = t.At(i, j).AppendKey(key[:0])
				mix(key)
			}
		}
	}
	return h
}

// SaveBaseline writes the cache file for a fully-passing run. It refuses
// (without error) to cache runs with failures, errors or skipped results
// — only a complete clean run proves every invariant.
func SaveBaseline(path string, db *sqlmini.DB, s *Suite, results []Result) error {
	if len(results) != len(s.invs) {
		return fmt.Errorf("check: baseline results/suite shape mismatch")
	}
	for _, r := range results {
		if !r.Passed() || r.Skipped {
			return nil
		}
	}
	gbytes, err := delta.EncodeGraph(s.DependencyGraph())
	if err != nil {
		return err
	}
	names := make([]string, len(s.invs))
	for i, inv := range s.invs {
		names[i] = inv.Name
	}
	data, err := json.Marshal(baselineFile{
		Hash:       fmt.Sprintf("%016x", SpecHash(db, s)),
		Invariants: names,
		Graph:      gbytes,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadBaseline validates the cache file against the current database and
// suite and, on a match, returns synthesized all-passing results (empty
// violation tables) plus ok=true. Feed them to RunDelta with the
// session's first (empty) delta: analyzable invariants carry over as
// Skipped, unanalyzable ones re-check. Any mismatch — missing file,
// different suite, different table contents — returns ok=false and the
// caller falls back to a full run.
func LoadBaseline(path string, db *sqlmini.DB, s *Suite) ([]Result, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, false
	}
	if len(bf.Invariants) != len(s.invs) {
		return nil, false
	}
	for i, inv := range s.invs {
		if bf.Invariants[i] != inv.Name {
			return nil, false
		}
	}
	if bf.Hash != fmt.Sprintf("%016x", SpecHash(db, s)) {
		return nil, false
	}
	if g, err := delta.DecodeGraph(bf.Graph); err == nil {
		s.RestoreInputs(g)
	}
	results := make([]Result, len(s.invs))
	for i, inv := range s.invs {
		empty, err := rel.NewTable(inv.Name+"_violations", "violation")
		if err != nil {
			return nil, false
		}
		results[i] = Result{Invariant: inv, Violations: empty}
	}
	return results, true
}
