//go:build !race

package check

// raceEnabled reports whether the race detector is compiled in; see
// race_on_test.go for the other half.
const raceEnabled = false
