// Package check implements the paper's §4.3 static protocol checking: each
// invariant is a SQL SELECT whose result must be empty ("[Select ... from D
// where <violation>] = empty"). The suite contains the paper's published
// invariants plus the rest of a ~50-invariant family in the same style,
// covering directory consistency, request serialization, busy-directory
// life cycle, message-column discipline and the per-controller tables.
//
// Invariant queries are evaluated under ANSI NULL semantics (a comparison
// with a dontcare/noop NULL is unknown, so such rows never count as
// violations), matching the behaviour of the relational system the paper
// deployed.
package check

import (
	"fmt"
	"time"

	"coherdb/internal/delta"
	"coherdb/internal/obs"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Invariant is one statically checkable protocol property.
type Invariant struct {
	// Name is a short unique identifier, e.g. "dir-mesi-one".
	Name string
	// Desc says what property the invariant establishes.
	Desc string
	// Ref cites the paper section the invariant comes from, or "family"
	// for the systematic completions.
	Ref string
	// SQL is a SELECT over the controller tables returning the violating
	// rows; the invariant holds iff the result is empty.
	SQL string
}

// Result is the outcome of checking one invariant.
type Result struct {
	Invariant  Invariant
	Violations *rel.Table
	Elapsed    time.Duration
	Err        error
	// Stats is the invariant query's execution profile (rows scanned,
	// join strategies, morsel/steal counts). Zero when the query fell
	// back to the unprepared path.
	Stats sqlmini.QueryStats
	// Skipped marks a result carried over from the previous run by
	// RunDelta because the invariant's input columns were untouched by
	// the revision's delta; Violations then aliases the prior table.
	Skipped bool
}

// Passed reports whether the invariant held.
func (r Result) Passed() bool { return r.Err == nil && r.Violations != nil && r.Violations.Empty() }

// Suite is an ordered collection of invariants.
type Suite struct {
	invs []Invariant
	// inputs caches each invariant's (table, columns) dependency list,
	// extracted from its SQL; see inputSets. Dropped on Add.
	inputs [][]delta.Input
}

// NewSuite builds an empty suite.
func NewSuite() *Suite { return &Suite{} }

// SuiteFrom builds a suite from already-parsed invariants, e.g. the static
// checks embedded in a spec file.
func SuiteFrom(invs []Invariant) *Suite {
	s := NewSuite()
	for _, inv := range invs {
		s.Add(inv)
	}
	return s
}

// Add appends an invariant. Duplicate names panic: suites are static.
func (s *Suite) Add(inv Invariant) *Suite {
	for _, have := range s.invs {
		if have.Name == inv.Name {
			panic(fmt.Sprintf("check: duplicate invariant %q", inv.Name))
		}
	}
	s.invs = append(s.invs, inv)
	s.inputs = nil
	return s
}

// Len returns the number of invariants.
func (s *Suite) Len() int { return len(s.invs) }

// Invariants returns the invariants in order.
func (s *Suite) Invariants() []Invariant { return append([]Invariant(nil), s.invs...) }

// Options tunes suite execution.
type Options struct {
	// Workers bounds parallelism on the shared worker pool; 0 means the
	// pool's full size, 1 runs the suite inline.
	Workers int
	// Tracer, when set, receives a "check.suite" span plus one
	// "check.invariant" child span per invariant.
	Tracer obs.Tracer
	// Metrics, when set, accumulates a per-invariant duration histogram
	// (coherdb_invariant_duration_seconds) and violation counter
	// (coherdb_invariant_violations_total).
	Metrics *obs.Registry
}

// observe reports one finished invariant check to metrics.
func (o Options) observe(r Result) {
	if o.Metrics == nil {
		return
	}
	violations := 0
	if r.Violations != nil {
		violations = r.Violations.NumRows()
	}
	o.Metrics.Help("coherdb_invariant_duration_seconds", "Wall time of each invariant query.")
	o.Metrics.Histogram("coherdb_invariant_duration_seconds", nil, obs.L("invariant", r.Invariant.Name)).ObserveDuration(r.Elapsed)
	o.Metrics.Help("coherdb_invariant_violations_total", "Violating rows returned by each invariant query.")
	o.Metrics.Counter("coherdb_invariant_violations_total", obs.L("invariant", r.Invariant.Name)).Add(int64(violations))
}

// DBLike is the catalog view a suite runs against: the shared
// *sqlmini.DB, or one *sqlmini.Session (the server's per-session
// incremental re-check path). Both prepare through the shared plan cache
// and resolve tables through their own snapshot/overlay view.
type DBLike interface {
	Prepare(src string) (*sqlmini.Prepared, error)
	Query(src string) (*rel.Table, error)
	Table(name string) (*rel.Table, bool)
}

// Run checks every invariant against db and returns results in suite
// order. Invariants are independent queries, so they are dealt one at a
// time to the shared worker pool (work stealing keeps an expensive
// invariant from serializing the rest); Workers: 1 runs the suite inline.
// Every invariant query executes with its NULL dialect pinned to strict
// ANSI for just that statement, so concurrent sessions running their own
// suites (or the constraint dialect) never perturb each other.
func (s *Suite) Run(db DBLike, opts Options) []Result {
	results := make([]Result, len(s.invs))
	idx := make([]int, len(s.invs))
	for i := range idx {
		idx[i] = i
	}
	s.runSubset(db, idx, results, opts, nil)
	return results
}

// runSubset checks the invariants named by idx, writing their results into
// the matching slots of results; other slots are left as the caller set
// them. extra attributes land on the "check.suite" span.
func (s *Suite) runSubset(db DBLike, idx []int, results []Result, opts Options, extra []obs.Attr) {
	exec := pool.Shared()
	workers := opts.Workers
	if workers <= 0 || workers > exec.Size() {
		workers = exec.Size()
	}
	if workers > len(idx) {
		workers = len(idx)
	}

	// Prepare every invariant up front: re-running the suite (the paper's
	// every-revision workflow) then never re-parses or re-plans a query.
	prepared := make([]*sqlmini.Prepared, len(idx))
	for k, i := range idx {
		prepared[k], _ = db.Prepare(s.invs[i].SQL) // a nil entry falls back to Query
	}

	attrs := append([]obs.Attr{obs.Int("invariants", len(idx)), obs.Int("workers", workers)}, extra...)
	suite := obs.StartSpan(opts.Tracer, "check.suite", attrs...)
	if len(idx) == 0 {
		suite.Finish()
		return
	}
	st, _ := exec.Each(workers, len(idx), 1, func(k, _, _ int) error {
		i := k
		inv := s.invs[idx[i]]
		sp := suite.Child("check.invariant", obs.String("invariant", inv.Name))
		start := time.Now()
		var tab *rel.Table
		var qs sqlmini.QueryStats
		var err error
		if p := prepared[i]; p != nil {
			var res *sqlmini.Result
			res, qs, err = p.ExecStatsDialect(true)
			if err == nil {
				tab = res.Table
				if tab == nil {
					err = fmt.Errorf("check: invariant %q is not a query", inv.Name)
				}
			}
		} else {
			tab, err = db.Query(inv.SQL)
		}
		r := Result{
			Invariant:  inv,
			Violations: tab,
			Elapsed:    time.Since(start),
			Err:        err,
			Stats:      qs,
		}
		if sp != nil {
			violations := 0
			if tab != nil {
				violations = tab.NumRows()
			}
			sp.SetAttr(obs.Int("violations", violations))
			if err != nil {
				sp.SetAttr(obs.String("error", err.Error()))
			}
			sp.Finish()
		}
		opts.observe(r)
		results[idx[i]] = r
		return nil
	})
	suite.SetAttr(obs.Int("steals", st.Steals))
	suite.Finish()
}

// Summary aggregates a run.
type Summary struct {
	Total, Passed, Failed, Errors int
	Elapsed                       time.Duration
}

// Summarize folds results into a summary.
func Summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		s.Total++
		s.Elapsed += r.Elapsed
		switch {
		case r.Err != nil:
			s.Errors++
		case r.Passed():
			s.Passed++
		default:
			s.Failed++
		}
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%d invariants: %d passed, %d failed, %d errors (%.1fms total query time)",
		s.Total, s.Passed, s.Failed, s.Errors, float64(s.Elapsed.Microseconds())/1000)
}
