package check

import (
	"strings"
	"sync"
	"testing"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// One shared generated database for the whole test package.
var (
	dbOnce sync.Once
	dbVal  *sqlmini.DB
	dbErr  error
)

func protocolDB(t testing.TB) *sqlmini.DB {
	t.Helper()
	dbOnce.Do(func() {
		dbVal = sqlmini.NewDB()
		_, dbErr = protocol.GenerateAll(dbVal)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbVal
}

func TestSuiteScale(t *testing.T) {
	// C3: "All of the protocol invariants (around 50) are checked."
	// Our suite completes the published four to the same order: the
	// systematic family over all eight tables lands at ~60.
	s := ProtocolSuite()
	if n := s.Len(); n < 45 || n > 70 {
		t.Fatalf("suite has %d invariants, want the paper's order of 50", n)
	}
}

func TestSuiteNamesUniqueAndDocumented(t *testing.T) {
	for _, inv := range ProtocolSuite().Invariants() {
		if inv.Name == "" || inv.Desc == "" || inv.Ref == "" || inv.SQL == "" {
			t.Fatalf("underdocumented invariant: %+v", inv)
		}
		if !strings.Contains(strings.ToUpper(inv.SQL), "SELECT") {
			t.Fatalf("invariant %s is not a SELECT", inv.Name)
		}
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSuite().
		Add(Invariant{Name: "x", SQL: "SELECT 1"}).
		Add(Invariant{Name: "x", SQL: "SELECT 1"})
}

func TestProtocolSuitePassesOnGeneratedTables(t *testing.T) {
	// The headline §4.3 result: the debugged tables satisfy every
	// invariant.
	db := protocolDB(t)
	results := ProtocolSuite().Run(db, Options{})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: query error: %v", r.Invariant.Name, r.Err)
			continue
		}
		if !r.Passed() {
			t.Errorf("%s (%s) violated by %d rows:\n%s",
				r.Invariant.Name, r.Invariant.Ref, r.Violations.NumRows(), r.Violations)
		}
	}
	sum := Summarize(results)
	if sum.Failed != 0 || sum.Errors != 0 {
		t.Fatalf("summary: %s", sum)
	}
	if sum.Passed != ProtocolSuite().Len() {
		t.Fatalf("passed = %d, want %d", sum.Passed, ProtocolSuite().Len())
	}
	if !strings.Contains(sum.String(), "passed") {
		t.Fatal("summary rendering broken")
	}
}

func TestSuiteDetectsSeededBug(t *testing.T) {
	// Early error detection: corrupt one row of D the way a hand-edited
	// table would be, and the suite must flag it.
	db := protocolDB(t)
	// Work on a copy so other tests keep the clean table.
	d, _ := db.Table("D")
	defer db.PutTable(d)
	bad := d.Clone()
	// Bug: a readex completion "forgets" the ownership transfer.
	seeded := false
	for i := 0; i < bad.NumRows(); i++ {
		if bad.Get(i, "locmsg").Str() == "datax" {
			if err := bad.Set(i, "nxtdirpv", rel.S("inc")); err != nil {
				t.Fatal(err)
			}
			seeded = true
			break
		}
	}
	if !seeded {
		t.Fatal("no datax row to corrupt")
	}
	db.PutTable(bad)
	results := ProtocolSuite().Run(db, Options{})
	found := false
	for _, r := range results {
		if r.Invariant.Name == "datax-transfers-ownership" && !r.Passed() {
			found = true
		}
	}
	if !found {
		t.Fatal("seeded ownership bug not detected")
	}
}

func TestSuiteDetectsRetryBug(t *testing.T) {
	db := protocolDB(t)
	d, _ := db.Table("D")
	defer db.PutTable(d)
	bad := d.Clone()
	seeded := false
	for i := 0; i < bad.NumRows(); i++ {
		if bad.Get(i, "locmsg").Str() == "retry" {
			// Bug: the retry is "optimized away" — the request is dropped.
			if err := bad.Set(i, "locmsg", rel.Null()); err != nil {
				t.Fatal(err)
			}
			seeded = true
			break
		}
	}
	if !seeded {
		t.Fatal("no retry row to corrupt")
	}
	db.PutTable(bad)
	results := ProtocolSuite().Run(db, Options{})
	var hit []string
	for _, r := range results {
		if r.Err == nil && !r.Passed() {
			hit = append(hit, r.Invariant.Name)
		}
	}
	if len(hit) == 0 {
		t.Fatal("seeded dropped-retry bug not detected")
	}
	found := false
	for _, name := range hit {
		if name == "busy-request-retried" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected busy-request-retried to fire, got %v", hit)
	}
}

func TestRunSingleWorkerMatches(t *testing.T) {
	db := protocolDB(t)
	r1 := ProtocolSuite().Run(db, Options{Workers: 1})
	rN := ProtocolSuite().Run(db, Options{Workers: 8})
	if len(r1) != len(rN) {
		t.Fatal("result lengths differ")
	}
	for i := range r1 {
		if r1[i].Passed() != rN[i].Passed() {
			t.Fatalf("invariant %s differs across worker counts", r1[i].Invariant.Name)
		}
	}
}
