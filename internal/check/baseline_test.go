package check

import (
	"os"
	"path/filepath"
	"testing"

	"coherdb/internal/delta"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

func baselineDB(t *testing.T) *sqlmini.DB {
	t.Helper()
	db := sqlmini.NewDB()
	tab, err := rel.NewTable("cache_ctl", "state", "event", "next")
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"I", "load", "S"},
		{"S", "store", "M"},
		{"M", "evict", "I"},
	}
	for _, r := range rows {
		if err := tab.Insert(rel.S(r[0]), rel.S(r[1]), rel.S(r[2])); err != nil {
			t.Fatal(err)
		}
	}
	db.PutTable(tab)
	return db
}

func baselineSuite() *Suite {
	s := NewSuite()
	s.Add(Invariant{
		Name: "no-self-loop",
		SQL:  "SELECT state FROM cache_ctl WHERE state = next",
	})
	s.Add(Invariant{
		Name: "evict-goes-invalid",
		SQL:  "SELECT state FROM cache_ctl WHERE event = 'evict' AND next <> 'I'",
	})
	return s
}

func TestGraphPersistRoundTrip(t *testing.T) {
	g := delta.NewGraph()
	g.Add("a", delta.Input{Table: "t1", Cols: []string{"x", "y"}})
	g.Add("b", delta.Input{Table: "t2"}, delta.Input{Table: "t1", Cols: []string{"z"}})
	data, err := delta.EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := delta.DecodeGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Nodes(), g.Nodes(); len(got) != len(want) || got[0] != "a" || got[1] != "b" {
		t.Fatalf("nodes = %v, want %v", got, want)
	}
	for _, n := range g.Nodes() {
		a, b := g.Inputs(n), back.Inputs(n)
		if len(a) != len(b) {
			t.Fatalf("node %s: inputs %v != %v", n, a, b)
		}
		for i := range a {
			if a[i].Table != b[i].Table || len(a[i].Cols) != len(b[i].Cols) {
				t.Fatalf("node %s input %d: %v != %v", n, i, a[i], b[i])
			}
		}
	}
}

func TestBaselineCacheRoundTrip(t *testing.T) {
	db := baselineDB(t)
	suite := baselineSuite()
	path := filepath.Join(t.TempDir(), "baseline.json")

	// Nothing cached yet.
	if _, ok := LoadBaseline(path, db, suite); ok {
		t.Fatal("loaded a baseline that was never saved")
	}

	results := suite.Run(db, Options{})
	for _, r := range results {
		if !r.Passed() {
			t.Fatalf("fixture invariant failed: %+v", r)
		}
	}
	if err := SaveBaseline(path, db, suite, results); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new suite object, same DB content.
	fresh := baselineSuite()
	prev, ok := LoadBaseline(path, db, fresh)
	if !ok {
		t.Fatal("cache miss on identical spec")
	}
	if len(prev) != fresh.Len() {
		t.Fatalf("loaded %d results, want %d", len(prev), fresh.Len())
	}
	for _, r := range prev {
		if !r.Passed() {
			t.Fatalf("synthesized result not passing: %+v", r)
		}
	}

	// The session's first (empty) delta: everything analyzable skips.
	rev := db.BeginRevision()
	d := rev.Commit()
	after := fresh.RunDelta(db, prev, d, Options{})
	for _, r := range after {
		if !r.Skipped {
			t.Fatalf("invariant %s re-checked on empty delta after cache hit", r.Invariant.Name)
		}
	}

	// Mutating a read table invalidates the hash.
	if _, err := db.Exec("INSERT INTO cache_ctl VALUES ('E', 'store', 'M')"); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadBaseline(path, db, baselineSuite()); ok {
		t.Fatal("cache hit after table mutation")
	}
}

func TestBaselineRefusesDirtyRuns(t *testing.T) {
	db := baselineDB(t)
	suite := NewSuite().Add(Invariant{
		Name: "always-violated",
		SQL:  "SELECT state FROM cache_ctl WHERE state = 'I'",
	})
	path := filepath.Join(t.TempDir(), "baseline.json")
	results := suite.Run(db, Options{})
	if results[0].Passed() {
		t.Fatal("fixture should violate")
	}
	if err := SaveBaseline(path, db, suite, results); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("baseline file written for a failing run")
	}
}

func TestBaselineSuiteShapeMismatch(t *testing.T) {
	db := baselineDB(t)
	suite := baselineSuite()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := SaveBaseline(path, db, suite, suite.Run(db, Options{})); err != nil {
		t.Fatal(err)
	}
	other := baselineSuite().Add(Invariant{
		Name: "extra",
		SQL:  "SELECT state FROM cache_ctl WHERE state = ''",
	})
	if _, ok := LoadBaseline(path, db, other); ok {
		t.Fatal("cache hit across different suites")
	}
}
