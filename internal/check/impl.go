package check

// ImplementationSuite builds the static checks for the extended table ED
// (§5): the implementation-detail rows added by the hardware mapping must
// themselves satisfy the queue/feedback discipline of the Figure 5
// micro-architecture. Run it on a database holding ED (e.g. after
// hwmap.Partition).
func ImplementationSuite() *Suite {
	s := NewSuite()
	s.Add(Invariant{
		Name: "full-queues-retry",
		Desc: "a request finding the output queues full is retried and does nothing else",
		Ref:  "§5",
		SQL: `SELECT inmsg, locmsg FROM ED WHERE isrequest(inmsg) AND Qstatus = 'Full'
			AND NOT inmsg = 'Dfdback'
			AND (NOT locmsg = 'retry' OR remmsg IS NOT NULL OR memmsg IS NOT NULL
			     OR nxtbdirst IS NOT NULL OR nxtdirst IS NOT NULL)`,
	})
	s.Add(Invariant{
		Name: "notfull-never-spurious-retry",
		Desc: "with queues available, a retry is only ever caused by a busy conflict",
		Ref:  "§5",
		SQL: `SELECT inmsg, bdirhit, locmsg FROM ED WHERE Qstatus = 'NotFull'
			AND locmsg = 'retry' AND NOT bdirhit = 'hit'`,
	})
	s.Add(Invariant{
		Name: "full-updq-defers-update",
		Desc: "a full update queue defers the directory write over the feedback path",
		Ref:  "§5",
		SQL: `SELECT inmsg, Dqstatus, Fdback FROM ED WHERE isresponse(inmsg)
			AND Dqstatus = 'Full' AND dirupd IS NOT NULL`,
	})
	s.Add(Invariant{
		Name: "feedback-only-when-full",
		Desc: "the feedback path is used only under a full update queue (or to requeue itself)",
		Ref:  "§5",
		SQL: `SELECT inmsg, Qstatus, Dqstatus, Fdback FROM ED WHERE Fdback IS NOT NULL
			AND NOT Dqstatus = 'Full' AND NOT (inmsg = 'Dfdback' AND Qstatus = 'Full')`,
	})
	s.Add(Invariant{
		Name: "dfdback-replays-update",
		Desc: "a serviced Dfdback performs the deferred directory write",
		Ref:  "§5",
		SQL: `SELECT inmsg, Qstatus, dirupd FROM ED WHERE inmsg = 'Dfdback'
			AND Qstatus = 'NotFull' AND dirupd IS NULL`,
	})
	s.Add(Invariant{
		Name: "dqstatus-responses-only",
		Desc: "the update-queue status is consulted only for responses (§5: 'Dqstatus is not consulted for requests')",
		Ref:  "§5",
		SQL:  `SELECT inmsg, Dqstatus FROM ED WHERE isrequest(inmsg) AND Dqstatus IS NOT NULL`,
	})
	s.Add(Invariant{
		Name: "qstatus-requests-only",
		Desc: "the output-queue status gates requests, not responses",
		Ref:  "§5",
		SQL:  `SELECT inmsg, Qstatus FROM ED WHERE isresponse(inmsg) AND Qstatus IS NOT NULL`,
	})
	return s
}
