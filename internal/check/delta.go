package check

import (
	"coherdb/internal/delta"
	"coherdb/internal/obs"
	"coherdb/internal/sqlmini"
)

// inputSets returns each invariant's (table, columns) dependency list,
// extracted once from its SQL and cached on the suite. A nil entry means
// the SQL could not be analyzed; such invariants are always re-checked.
func (s *Suite) inputSets() [][]delta.Input {
	if s.inputs != nil {
		return s.inputs
	}
	ins := make([][]delta.Input, len(s.invs))
	for i, inv := range s.invs {
		deps, err := sqlmini.QueryInputs(inv.SQL)
		if err != nil {
			continue // nil ⇒ conservative: always dirty
		}
		ins[i] = deps
	}
	s.inputs = ins
	return ins
}

// Inputs exposes the suite's dependency lists (one per invariant, suite
// order) so callers can populate a delta.Graph.
func (s *Suite) Inputs() [][]delta.Input {
	return append([][]delta.Input(nil), s.inputSets()...)
}

// RunDelta is the incremental form of Run: given the previous run's
// results and the delta a revision produced (sqlmini.Revision.Commit), it
// re-checks only the invariants whose input columns the delta touches and
// carries the rest over from prev, marked Skipped. Carrying a result over
// is sound because an invariant whose referenced columns are untouched
// sees a row-for-row identical projection of every table it reads (see
// rel.TableDelta.Touches for the cardinality caveat that forces re-runs on
// row-count changes).
//
// With prev or d missing (or the suite changed shape since prev) it falls
// back to a full Run. The "check.suite" span carries delta_rows, skipped
// and rechecked attributes; opts.Metrics accumulates the
// coherdb_delta_nodes_skipped_total / coherdb_delta_rows_reused_total
// counters.
func (s *Suite) RunDelta(db DBLike, prev []Result, d *delta.Set, opts Options) []Result {
	if prev == nil || len(prev) != len(s.invs) || d == nil {
		return s.Run(db, opts)
	}
	for i, r := range prev {
		if r.Invariant.Name != s.invs[i].Name {
			return s.Run(db, opts) // suite changed since prev
		}
	}

	ins := s.inputSets()
	results := make([]Result, len(s.invs))
	var idx []int
	for i := range s.invs {
		// Re-check on touched inputs, unanalyzable SQL, or a previous
		// error (an errored result proves nothing to carry over).
		if prev[i].Err != nil || ins[i] == nil || delta.DirtyInputs(d, ins[i]) {
			idx = append(idx, i)
			continue
		}
		r := prev[i]
		r.Skipped = true
		r.Elapsed = 0
		results[i] = r
	}

	rowsReused, nodesSkipped := delta.Counters(opts.Metrics)
	if nodesSkipped != nil {
		nodesSkipped.Add(int64(len(s.invs) - len(idx)))
	}
	if rowsReused != nil {
		var reused int64
		for i := range s.invs {
			if !results[i].Skipped {
				continue
			}
			for _, in := range ins[i] {
				if t, ok := db.Table(in.Table); ok {
					reused += int64(t.NumRows())
				}
			}
		}
		rowsReused.Add(reused)
	}

	s.runSubset(db, idx, results, opts, []obs.Attr{
		obs.Int("delta_rows", d.Rows()),
		obs.Int("skipped", len(s.invs)-len(idx)),
		obs.Int("rechecked", len(idx)),
	})
	return results
}
