package check

import (
	"testing"

	"coherdb/internal/hwmap"
	"coherdb/internal/rel"
)

func TestImplementationSuitePasses(t *testing.T) {
	db := protocolDB(t)
	d, _ := db.Table("D")
	if _, err := hwmap.Partition(db, d); err != nil {
		t.Fatal(err)
	}
	results := ImplementationSuite().Run(db, Options{})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Invariant.Name, r.Err)
			continue
		}
		if !r.Passed() {
			t.Errorf("%s violated (%d rows):\n%s",
				r.Invariant.Name, r.Violations.NumRows(), r.Violations)
		}
	}
}

func TestImplementationSuiteDetectsBrokenED(t *testing.T) {
	db := protocolDB(t)
	d, _ := db.Table("D")
	m, err := hwmap.Partition(db, d)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt ED: a Qstatus=Full request row "optimizes away" its retry.
	ed := m.Extended
	defer db.PutTable(ed)
	bad := ed.Clone()
	seeded := false
	for i := 0; i < bad.NumRows() && !seeded; i++ {
		if bad.Get(i, hwmap.ColQstatus).Equal(rel.S(hwmap.Full)) &&
			bad.Get(i, "locmsg").Equal(rel.S("retry")) &&
			!bad.Get(i, "inmsg").Equal(rel.S("Dfdback")) {
			if err := bad.Set(i, "remmsg", rel.S("sinv")); err != nil {
				t.Fatal(err)
			}
			seeded = true
		}
	}
	if !seeded {
		t.Fatal("no row to corrupt")
	}
	db.PutTable(bad)
	results := ImplementationSuite().Run(db, Options{})
	found := false
	for _, r := range results {
		if r.Invariant.Name == "full-queues-retry" && !r.Passed() {
			found = true
		}
	}
	if !found {
		t.Fatal("corrupted ED not detected")
	}
}
