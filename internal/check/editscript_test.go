package check

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// renderResults canonicalizes a run for byte-for-byte comparison:
// invariant name, error, and the violation rows — everything except
// timing, stats, and the Skipped marker.
func renderResults(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "== %s ==\n", r.Invariant.Name)
		if r.Err != nil {
			fmt.Fprintf(&b, "error: %v\n", r.Err)
			continue
		}
		if r.Violations == nil {
			b.WriteString("<nil>\n")
			continue
		}
		if err := r.Violations.WriteCSV(&b); err != nil {
			fmt.Fprintf(&b, "render error: %v\n", err)
		}
	}
	return b.String()
}

// cloneCatalog builds a fresh DB holding deep copies of src's tables plus
// the protocol predicates, so edit chains cannot leak into the shared
// package fixture.
func cloneCatalog(src *sqlmini.DB) *sqlmini.DB {
	db := sqlmini.NewDB()
	protocol.RegisterFuncs(db.Register)
	for _, name := range src.Names() {
		if t, ok := src.Table(name); ok {
			db.PutTable(t.Clone())
		}
	}
	return db
}

// applyEdit mutates tab with one random row edit: a cell overwrite (70%),
// a near-duplicate row insert (15%), or a row delete (15%). Values are
// drawn from the same column so edits stay schema-plausible.
func applyEdit(rng *rand.Rand, tab *rel.Table) error {
	n := tab.NumRows()
	w := tab.NumCols()
	op := rng.Intn(100)
	switch {
	case n == 0 || (op >= 70 && op < 85):
		if n == 0 {
			return nil
		}
		row := make([]uint32, w)
		src := rng.Intn(n)
		for j := 0; j < w; j++ {
			row[j] = tab.CodeAt(src, j)
		}
		row[rng.Intn(w)] = tab.CodeAt(rng.Intn(n), rng.Intn(w))
		return tab.AppendCodeRow(row)
	case op >= 85 && n > 2:
		target := rng.Intn(n)
		i := 0
		tab.DeleteWhere(func(rel.Row) bool {
			hit := i == target
			i++
			return hit
		})
		return nil
	default:
		i, j := rng.Intn(n), rng.Intn(w)
		return tab.Set(i, tab.ColumnsRef()[j], tab.At(rng.Intn(n), j))
	}
}

// TestEditScriptEquivalence is the randomized incremental-vs-monolithic
// gate: for every controller table it applies a seeded script of random
// row edits, chains RunDelta across the whole script, and periodically
// asserts the chained incremental results render byte-identical to a
// from-scratch Run of the same database state. Chains cover both NULL
// dialects and both serial and pooled execution; the full 200-edit scripts
// also run under -race via scripts/bench.sh.
func TestEditScriptEquivalence(t *testing.T) {
	base := protocolDB(t)
	controllers := []string{
		protocol.DirectoryTable, protocol.MemoryTable, protocol.CacheTable,
		protocol.NodeTable, protocol.RACTable, protocol.IOBridgeTable,
		protocol.InterruptTable, protocol.SyncTable,
	}

	edits := 200
	checkEvery := 40
	if testing.Short() {
		edits, checkEvery = 25, 10
	} else if raceEnabled {
		checkEvery = 50
	}

	for i, ctrl := range controllers {
		strict := i%2 == 0
		workers := 1
		if i%4 >= 2 {
			workers = 0 // shared pool
		}
		t.Run(fmt.Sprintf("%s/strict=%v/workers=%d", ctrl, strict, workers), func(t *testing.T) {
			db := cloneCatalog(base)
			db.SetStrictNulls(strict)
			suite := ProtocolSuite()
			opts := Options{Workers: workers}

			rev := db.BeginRevision()
			prev := suite.Run(db, opts)
			tab := db.MustTable(ctrl)
			rng := rand.New(rand.NewSource(int64(7919 + 31*i)))

			skippedTotal, recheckedTotal := 0, 0
			for e := 1; e <= edits; e++ {
				if err := applyEdit(rng, tab); err != nil {
					t.Fatalf("edit %d: %v", e, err)
				}
				d := rev.Commit()
				prev = suite.RunDelta(db, prev, d, opts)
				for _, r := range prev {
					if r.Skipped {
						skippedTotal++
					} else {
						recheckedTotal++
					}
				}
				if e%checkEvery == 0 || e == edits {
					full := suite.Run(db, opts)
					if got, want := renderResults(prev), renderResults(full); got != want {
						t.Fatalf("edit %d: incremental diverged from full rebuild\n--- incremental ---\n%s\n--- full ---\n%s",
							e, got, want)
					}
				}
			}
			if skippedTotal == 0 {
				t.Fatal("no invariant was ever delta-skipped: the incremental path is vacuous")
			}
			if recheckedTotal == 0 {
				t.Fatal("no invariant was ever re-checked: the edit script is vacuous")
			}
		})
	}
}
