package constraint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"coherdb/internal/rel"
)

// TestBatchCursorCoversEveryIndexOnce drains a batchCursor sequentially
// and checks the dealt ranges partition [0, n) exactly — in particular for
// n smaller than the worker count, where the old static per-worker
// division (per = n/workers = 0) dropped every index.
func TestBatchCursorCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 8}, {1, 8}, {3, 8}, {7, 8}, {8, 8}, {9, 8},
		{100, 8}, {1000, 3}, {1 << 12, 16}, {5, 1}, {1, 1},
	} {
		t.Run(fmt.Sprintf("n=%d/workers=%d", tc.n, tc.workers), func(t *testing.T) {
			c := newBatchCursor(uint64(tc.n), tc.workers)
			seen := make([]int, tc.n)
			batches := 0
			lastIdx := -1
			for {
				idx, lo, hi, ok := c.grab()
				if !ok {
					break
				}
				batches++
				if idx != lastIdx+1 {
					t.Fatalf("batch ordinal %d after %d; sequential grabs must be dense", idx, lastIdx)
				}
				lastIdx = idx
				if lo >= hi {
					t.Fatalf("empty batch [%d, %d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			}
			if batches != c.numBatches() {
				t.Fatalf("grabbed %d batches, numBatches says %d", batches, c.numBatches())
			}
			for i, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("index %d dealt %d times", i, cnt)
				}
			}
		})
	}
}

// TestBatchCursorConcurrent drains one cursor from many goroutines and
// checks every index is still dealt exactly once.
func TestBatchCursorConcurrent(t *testing.T) {
	const n = 1 << 14
	c := newBatchCursor(n, 8)
	seen := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, lo, hi, ok := c.grab()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if seen[i] != 1 {
			t.Fatalf("index %d dealt %d times", i, seen[i])
		}
	}
}

// TestMonolithicTinySpaceManyWorkers pins the worker-split bug: a space
// smaller than the worker count must still enumerate every assignment
// exactly once and agree with the incremental solver.
func TestMonolithicTinySpaceManyWorkers(t *testing.T) {
	s := NewSpec("tiny")
	mustDo(t, s.AddColumn(Column{Name: "a", Values: []string{"1", "2", "3"}, NoNull: true}))
	tab, stats, err := MonolithicOpts(s, Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3 (space < workers must not drop or duplicate)", tab.NumRows())
	}
	if stats.Candidates != 3 {
		t.Fatalf("candidates = %d, want 3", stats.Candidates)
	}
	inc, _, err := SolveOpts(s, Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if eq, err := tab.EqualRows(inc); err != nil || !eq {
		t.Fatalf("monolithic and incremental disagree on tiny space: %v", err)
	}
}

// TestGroupTableIntern checks dense ids, duplicate detection and growth
// past the initial slot count.
func TestGroupTableIntern(t *testing.T) {
	gt := newGroupTable(0)
	keys := make([][]byte, 300)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	for i, k := range keys {
		if g := gt.intern(k); g != int32(i) {
			t.Fatalf("intern(%q) = %d, want %d", k, g, i)
		}
	}
	// Re-interning (even via a different backing array) hits the same ids.
	for i := range keys {
		k := []byte(fmt.Sprintf("key-%d", i))
		if g := gt.intern(k); g != int32(i) {
			t.Fatalf("re-intern(%q) = %d, want %d", k, g, i)
		}
	}
	if gt.entries != len(keys) {
		t.Fatalf("entries = %d, want %d", gt.entries, len(keys))
	}
}

// TestConcurrentSolvesShareCompiledKernels solves one spec from many
// goroutines at once: the compiled-kernel cache on the spec must be safe
// to build and share concurrently (exercised under -race by bench.sh),
// and every solve must produce identical rows.
func TestConcurrentSolvesShareCompiledKernels(t *testing.T) {
	spec := figure3Spec(t)
	const goroutines = 8
	tables := make([]*rel.Table, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tables[g], _, errs[g] = Solve(spec)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if eq, err := tables[0].EqualRows(tables[g]); err != nil || !eq {
			t.Fatalf("solve %d disagrees with solve 0: %v", g, err)
		}
	}
}

// TestSolveStatsMemoAndCompile checks the new Stats fields: the readex
// fragment's projection memo must fire (rows share referenced-column
// projections), and compile time is measured on the first solve of a spec.
func TestSolveStatsMemoAndCompile(t *testing.T) {
	spec := figure3Spec(t)
	_, stats, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoHits == 0 {
		t.Fatal("expected projection-memo hits on the readex fragment")
	}
	if stats.CompileTime <= 0 {
		t.Fatal("first solve must report a positive CompileTime")
	}
	if stats.MemoHits > stats.Candidates {
		t.Fatalf("memo hits %d exceed %d candidates", stats.MemoHits, stats.Candidates)
	}
}
