package constraint

import (
	"math/rand"
	"testing"

	"coherdb/internal/rel"
)

// withScalarSweep runs fn with the column-at-a-time sweep disabled, so the
// solver evaluates constraints through the row-at-a-time oracle.
func withScalarSweep(t *testing.T, fn func()) {
	t.Helper()
	sweepVectorized = false
	defer func() { sweepVectorized = true }()
	fn()
}

// TestVectorizedSweepMatchesScalar is the solver half of the vectorized-
// execution equivalence gate: the Fig. 3 fragment and a batch of random
// specs must generate row-identical tables whether evalGroups decides each
// (row, value) pair through EvalCodes or whole domains through
// EvalSweepTrue.
func TestVectorizedSweepMatchesScalar(t *testing.T) {
	specs := []*Spec{figure3Spec(t)}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, s := range specs {
		vec, _, err := Solve(s)
		if err != nil {
			t.Fatalf("spec %d vectorized: %v", i, err)
		}
		var scal *rel.Table
		withScalarSweep(t, func() {
			s.invalidate() // fresh compile, same constraints
			tab, _, serr := Solve(s)
			if serr != nil {
				t.Fatalf("spec %d scalar: %v", i, serr)
			}
			scal = tab
		})
		eq, err := vec.EqualRows(scal)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !eq || vec.NumRows() != scal.NumRows() {
			t.Fatalf("spec %d: vectorized sweep produced %d rows, scalar %d",
				i, vec.NumRows(), scal.NumRows())
		}
	}
}
