package constraint

import (
	"sync"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// extendStats reports one extension step's work.
type extendStats struct {
	tested   uint64 // candidate (row, value) pairs decided
	memoHits uint64 // pairs decided from the projection memo
}

// extendCompiled extends every row in cur (width-1 codes each) with every
// code in domain, keeping extensions on which all fire predicates hold.
// Rows are dictionary-code rows throughout — the solver never boxes a
// rel.Value between the domain encoding and the final table. Output rows
// preserve input order: row i's surviving extensions precede row i+1's,
// in domain order — the same order the sequential loop would produce.
//
// The firing constraints only read the columns in refs (positions into the
// extended row; the new column is position width-1). Their verdict for a
// candidate therefore depends only on the row's projection onto the old
// referenced columns plus the appended domain value — so rows are grouped
// by that projection and each distinct (projection, value) pair is
// evaluated once. The readex fragment has thousands of intermediate rows
// but only dozens of distinct projections; work drops from
// O(rows x domain) evaluations to O(groups x domain).
func extendCompiled(cur [][]uint32, width int, domain []uint32, fire []compiledConstraint, refs []int, workers int) ([][]uint32, extendStats, error) {
	var st extendStats
	if len(cur) == 0 || len(domain) == 0 {
		return nil, st, nil
	}
	dlen := len(domain)
	st.tested = uint64(len(cur)) * uint64(dlen)

	if len(fire) == 0 {
		// Nothing to check: pure cross product.
		next := crossExtend(cur, width, domain, workers)
		return next, st, nil
	}

	// Group rows by their projection onto the referenced old columns. The
	// new column (position width-1) contributes the domain sweep instead.
	oldRefs := refs[:0:0]
	for _, p := range refs {
		if p < width-1 {
			oldRefs = append(oldRefs, p)
		}
	}
	groupOf := make([]int32, len(cur))
	var reps []int32 // representative row per group
	if len(oldRefs) == width-1 {
		// The projection keeps every old column, and cur rows are distinct
		// by construction (distinct extensions of distinct rows), so every
		// row is its own group: skip the key table.
		reps = make([]int32, len(cur))
		for i := range cur {
			groupOf[i] = int32(i)
			reps[i] = int32(i)
		}
	} else {
		keys := newGroupTable(len(cur) / 4)
		var kb []byte
		for i, row := range cur {
			kb = kb[:0]
			for _, p := range oldRefs {
				// 4 bytes per code, no separators: fixed-width and injective.
				kb = rel.AppendCodeKey(kb, row[p])
			}
			g := keys.intern(kb)
			if int(g) == len(reps) {
				reps = append(reps, int32(i))
			}
			groupOf[i] = g
		}
	}
	st.memoHits = uint64(len(cur)-len(reps)) * uint64(dlen)

	// Evaluate each distinct (projection, value) pair once, in parallel.
	verdicts := make([]bool, len(reps)*dlen)
	if err := evalGroups(cur, width, domain, fire, reps, verdicts, workers); err != nil {
		return nil, st, err
	}

	// Emit surviving extensions, work-stealing over row batches and
	// reassembling in batch order for determinism.
	next := emitExtensions(cur, width, domain, groupOf, verdicts, workers)
	return next, st, nil
}

// sweepVectorized gates the solver's column-at-a-time domain sweep;
// equivalence tests flip it to cross-check the vectorized and scalar
// sweeps over full protocol generations. Not synchronized: set it before
// solving, not during.
var sweepVectorized = true

// sweepScalarCutover is the work volume — groups × domain lanes — below
// which the vectorized sweep's per-group setup (lane buffers, broadcast
// of sweep-stable subtrees) costs more than the lanes it amortizes; such
// steps run the pooled scalar closures instead. Kept small: DirectoryD's
// production steps have hundreds of groups over single-digit domains,
// and the vectorized sweep already wins there.
const sweepScalarCutover = 256

// sweepSmallJob is the work volume below which a step runs inline on the
// calling goroutine: dealing single-group batches through the cursor to
// a spawned worker set costs more than the evaluations themselves. The
// Figure 3 fragment micro-solves (BenchmarkGenerateIncremental) sit
// entirely below this; see BENCH_8.json for the tuning.
const sweepSmallJob = 4096

// evalGroups fills verdicts[g*len(domain)+di] for every group g and domain
// index di by running the fire programs on the group's representative row
// extended with domain[di]. Every firing program carries a column-at-a-
// time sweep form (see sqlmini.CompileSweepVec): one EvalSweepTrue call
// decides the whole domain for one (group, constraint) pair, evaluating
// sweep-stable rule conditions once per group and the sweep-reading
// leaves as tight loops over the domain's code vector. Constraints
// conjoin by AND-ing into a shared keep vector, stopping early when no
// lane survives.
func evalGroups(cur [][]uint32, width int, domain []uint32, fire []compiledConstraint, reps []int32, verdicts []bool, workers int) error {
	if !sweepVectorized || len(reps)*len(domain) < sweepScalarCutover {
		return evalGroupsScalar(cur, width, domain, fire, reps, verdicts, workers)
	}
	dlen := len(domain)
	if workers <= 1 || len(reps)*dlen < sweepSmallJob {
		// Small-step fast path: sweep inline on the calling goroutine.
		scratch := make([]uint32, width)
		keep := make([]bool, dlen)
		insts := make([]*sqlmini.Instance, len(fire))
		for i, c := range fire {
			insts[i] = c.sweep.Instance()
		}
		var firstErr error
	groups:
		for g := range reps {
			copy(scratch, cur[reps[g]])
			for _, in := range insts {
				in.NextRow()
			}
			for di := range keep {
				keep[di] = true
			}
			for i, cc := range fire {
				any, err := cc.sweep.EvalSweepTrue(insts[i], scratch, domain, keep)
				if err != nil {
					firstErr = err
					break groups
				}
				if !any {
					break
				}
			}
			copy(verdicts[g*dlen:(g+1)*dlen], keep)
		}
		for i, c := range fire {
			c.sweep.Release(insts[i])
		}
		return firstErr
	}
	cursor := newBatchCursor(uint64(len(reps)), workers)
	nw := workers
	if nb := cursor.numBatches(); nw > nb {
		nw = nb
	}
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := make([]uint32, width)
			keep := make([]bool, dlen)
			insts := make([]*sqlmini.Instance, len(fire))
			for i, c := range fire {
				insts[i] = c.sweep.Instance()
			}
			defer func() {
				for i, c := range fire {
					c.sweep.Release(insts[i])
				}
			}()
			for {
				_, lo, hi, ok := cursor.grab()
				if !ok {
					return
				}
				for g := lo; g < hi; g++ {
					copy(scratch, cur[reps[g]])
					for _, in := range insts {
						in.NextRow()
					}
					for di := range keep {
						keep[di] = true
					}
					for i, cc := range fire {
						any, err := cc.sweep.EvalSweepTrue(insts[i], scratch, domain, keep)
						if err != nil {
							errs[w] = err
							return
						}
						if !any {
							break
						}
					}
					copy(verdicts[int(g)*dlen:int(g+1)*dlen], keep)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalGroupsScalar is the row-at-a-time sweep the vectorized path
// replaced: one EvalCodes closure-tree walk per (group, value, constraint)
// triple, with the sweep cache amortizing subtrees over earlier columns.
// Kept as the cross-check oracle for the vectorized sweep.
func evalGroupsScalar(cur [][]uint32, width int, domain []uint32, fire []compiledConstraint, reps []int32, verdicts []bool, workers int) error {
	dlen := len(domain)
	if workers <= 1 || len(reps)*dlen < sweepSmallJob {
		// Micro-step fast path: the whole sweep runs on the calling
		// goroutine — spawning workers and dealing single-group batches
		// through the cursor costs more than the evaluations themselves.
		scratch := make([]uint32, width)
		insts := make([]*sqlmini.Instance, len(fire))
		for i, c := range fire {
			insts[i] = c.prog.Instance()
		}
		var firstErr error
	groups:
		for g := range reps {
			copy(scratch, cur[reps[g]])
			base := g * dlen
			for _, in := range insts {
				in.NextRow()
			}
			for di, c := range domain {
				scratch[width-1] = c
				pass := true
				for i, cc := range fire {
					t, err := cc.prog.EvalCodes(insts[i], scratch)
					if err != nil {
						firstErr = err
						break groups
					}
					if !t {
						pass = false
						break
					}
				}
				verdicts[base+di] = pass
			}
		}
		for i, c := range fire {
			c.prog.Release(insts[i])
		}
		return firstErr
	}
	cursor := newBatchCursor(uint64(len(reps)), workers)
	nw := workers
	if nb := cursor.numBatches(); nw > nb {
		nw = nb
	}
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := make([]uint32, width)
			insts := make([]*sqlmini.Instance, len(fire))
			for i, c := range fire {
				insts[i] = c.prog.Instance()
			}
			defer func() {
				for i, c := range fire {
					c.prog.Release(insts[i])
				}
			}()
			for {
				_, lo, hi, ok := cursor.grab()
				if !ok {
					return
				}
				for g := lo; g < hi; g++ {
					copy(scratch, cur[reps[g]])
					base := int(g) * dlen
					for _, in := range insts {
						in.NextRow()
					}
					for di, c := range domain {
						scratch[width-1] = c
						pass := true
						for i, cc := range fire {
							t, err := cc.prog.EvalCodes(insts[i], scratch)
							if err != nil {
								errs[w] = err
								return
							}
							if !t {
								pass = false
								break
							}
						}
						verdicts[base+di] = pass
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// emitExtensions materializes the surviving extensions from the verdict
// table. Rows come from per-worker arenas (one chunk allocation per ~2000
// code rows instead of one per row); batches reassemble in index order.
func emitExtensions(cur [][]uint32, width int, domain []uint32, groupOf []int32, verdicts []bool, workers int) [][]uint32 {
	dlen := len(domain)
	if workers <= 1 || len(cur)*dlen < sweepSmallJob {
		// Micro-step fast path: emit inline, same index order as the
		// batched reassembly below.
		cnt := 0
		for i := range cur {
			base := int(groupOf[i]) * dlen
			for _, pass := range verdicts[base : base+dlen] {
				if pass {
					cnt++
				}
			}
		}
		if cnt == 0 {
			return nil
		}
		var arena codeArena
		arena.reserve(cnt * width)
		out := make([][]uint32, 0, cnt)
		for i, row := range cur {
			base := int(groupOf[i]) * dlen
			for di, pass := range verdicts[base : base+dlen] {
				if !pass {
					continue
				}
				nr := arena.row(width)
				copy(nr, row)
				nr[width-1] = domain[di]
				out = append(out, nr)
			}
		}
		return out
	}
	cursor := newBatchCursor(uint64(len(cur)), workers)
	nb := cursor.numBatches()
	nw := workers
	if nw > nb {
		nw = nb
	}
	perBatch := make([][][]uint32, nb)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var arena codeArena
			for {
				idx, lo, hi, ok := cursor.grab()
				if !ok {
					return
				}
				// Count survivors first so the batch's rows come from one
				// exactly-sized chunk and one output slice.
				cnt := 0
				for i := lo; i < hi; i++ {
					base := int(groupOf[i]) * dlen
					for _, pass := range verdicts[base : base+dlen] {
						if pass {
							cnt++
						}
					}
				}
				if cnt == 0 {
					continue
				}
				arena.reserve(cnt * width)
				out := make([][]uint32, 0, cnt)
				for i := lo; i < hi; i++ {
					row := cur[i]
					base := int(groupOf[i]) * dlen
					for di, pass := range verdicts[base : base+dlen] {
						if !pass {
							continue
						}
						nr := arena.row(width)
						copy(nr, row)
						nr[width-1] = domain[di]
						out = append(out, nr)
					}
				}
				perBatch[idx] = out
			}
		}()
	}
	wg.Wait()
	return flattenBatches(perBatch)
}

// crossExtend is the unconstrained fast path: every extension survives.
func crossExtend(cur [][]uint32, width int, domain []uint32, workers int) [][]uint32 {
	dlen := len(domain)
	if workers <= 1 || len(cur)*dlen < sweepSmallJob {
		var arena codeArena
		arena.reserve(len(cur) * dlen * width)
		out := make([][]uint32, 0, len(cur)*dlen)
		for _, row := range cur {
			for _, c := range domain {
				nr := arena.row(width)
				copy(nr, row)
				nr[width-1] = c
				out = append(out, nr)
			}
		}
		return out
	}
	cursor := newBatchCursor(uint64(len(cur)), workers)
	nb := cursor.numBatches()
	nw := workers
	if nw > nb {
		nw = nb
	}
	perBatch := make([][][]uint32, nb)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var arena codeArena
			for {
				idx, lo, hi, ok := cursor.grab()
				if !ok {
					return
				}
				arena.reserve(int(hi-lo) * dlen * width)
				out := make([][]uint32, 0, (hi-lo)*uint64(dlen))
				for i := lo; i < hi; i++ {
					row := cur[i]
					for _, c := range domain {
						nr := arena.row(width)
						copy(nr, row)
						nr[width-1] = c
						out = append(out, nr)
					}
				}
				perBatch[idx] = out
			}
		}()
	}
	wg.Wait()
	return flattenBatches(perBatch)
}

// flattenBatches concatenates per-batch row slices in batch order.
func flattenBatches(perBatch [][][]uint32) [][]uint32 {
	total := 0
	for _, b := range perBatch {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([][]uint32, 0, total)
	for _, b := range perBatch {
		out = append(out, b...)
	}
	return out
}
