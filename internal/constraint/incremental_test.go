package constraint

import (
	"strings"
	"testing"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// tableBytes renders a table for byte-for-byte comparison.
func tableBytes(t testing.TB, tab *rel.Table) string {
	t.Helper()
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestIncrementalSolverFullReuse(t *testing.T) {
	spec := figure3Spec(t)
	inc := NewIncrementalSolver(spec, Options{})

	t1, st1, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st1.ReusedSteps != 0 || st1.Steps != len(spec.Columns()) {
		t.Fatalf("first solve: reused=%d steps=%d", st1.ReusedSteps, st1.Steps)
	}
	want, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := tableBytes(t, t1), tableBytes(t, want); got != exp {
		t.Fatalf("incremental first solve diverged from Solve:\n%s\nvs\n%s", got, exp)
	}

	t2, st2, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if t2 != t1 {
		t.Fatal("unchanged spec: expected the same table pointer back")
	}
	if st2.ReusedSteps != len(spec.Columns()) || st2.Candidates != 0 {
		t.Fatalf("unchanged spec: reused=%d candidates=%d", st2.ReusedSteps, st2.Candidates)
	}
}

func TestIncrementalSolverConstraintEdit(t *testing.T) {
	spec := figure3Spec(t)
	inc := NewIncrementalSolver(spec, Options{})
	if _, _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}

	// Re-constrain memmsg (fires at step 5 of 8): the input steps and
	// locmsg must replay from the memo, memmsg onward re-executes.
	mustDo(t, spec.Constrain("memmsg", `memmsg = NULL`))
	got, st, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedSteps == 0 || st.ReusedSteps >= len(spec.Columns()) {
		t.Fatalf("ReusedSteps = %d, want a proper prefix", st.ReusedSteps)
	}
	want, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := tableBytes(t, got), tableBytes(t, want); g != w {
		t.Fatalf("after constraint edit, incremental diverged:\n%s\nvs\n%s", g, w)
	}
}

func TestIncrementalSolverColumnAppend(t *testing.T) {
	spec := figure3Spec(t)
	inc := NewIncrementalSolver(spec, Options{})
	if _, _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}

	mustDo(t, spec.AddOutput("extra", "armed"))
	mustDo(t, spec.Constrain("extra", `inmsg = readex ? extra = armed : extra = NULL`))
	got, st, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedSteps != len(spec.Columns())-1 {
		t.Fatalf("ReusedSteps = %d, want %d (all prior steps)", st.ReusedSteps, len(spec.Columns())-1)
	}
	want, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := tableBytes(t, got), tableBytes(t, want); g != w {
		t.Fatalf("after column append, incremental diverged:\n%s\nvs\n%s", g, w)
	}
}

func TestIncrementalSolverFuncInvalidation(t *testing.T) {
	spec := figure3Spec(t)
	spec.RegisterFunc("always", sqlmini.Func(func(args []rel.Value) (rel.Value, error) {
		return rel.S("true"), nil
	}))
	inc := NewIncrementalSolver(spec, Options{})
	if _, _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}

	// Re-registering a function (same name) must drop the whole memo.
	spec.RegisterFunc("always", func(args []rel.Value) (rel.Value, error) {
		return rel.S("true"), nil
	})
	_, st, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedSteps != 0 {
		t.Fatalf("ReusedSteps = %d after RegisterFunc, want 0", st.ReusedSteps)
	}
}

func TestIncrementalSolverMutatedOutput(t *testing.T) {
	spec := figure3Spec(t)
	inc := NewIncrementalSolver(spec, Options{})
	t1, _, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, t1.Clone())

	// A caller scribbling on the returned table must not poison the memo:
	// the next solve detects the moved revision and rebuilds.
	mustDo(t, t1.Set(0, t1.ColumnsRef()[0], rel.S("data")))
	t2, st, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if t2 == t1 {
		t.Fatal("expected a rebuilt table after external mutation")
	}
	if st.ReusedSteps != len(spec.Columns()) {
		t.Fatalf("ReusedSteps = %d, want full reuse", st.ReusedSteps)
	}
	if got := tableBytes(t, t2); got != want {
		t.Fatalf("rebuilt table diverged from original solve:\n%s\nvs\n%s", got, want)
	}
}

func TestIncrementalInputSpec(t *testing.T) {
	spec := figure3Spec(t)
	inc := NewIncrementalSolver(nil, Options{})

	sub1, err := InputSpec(spec)
	mustDo(t, err)
	t1, st1, err := inc.SolveSpec(sub1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ReusedSteps != 0 {
		t.Fatalf("first input solve reused %d steps", st1.ReusedSteps)
	}
	want, _, err := GenerateInputs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := tableBytes(t, t1), tableBytes(t, want); g != w {
		t.Fatalf("incremental input solve diverged:\n%s\nvs\n%s", g, w)
	}

	// Rebuilding InputSpec from the unchanged parent keeps the memo: the
	// inherited mutation stamps make the rebuilt sub-spec look identical.
	sub2, err := InputSpec(spec)
	mustDo(t, err)
	t2, st2, err := inc.SolveSpec(sub2)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != t1 {
		t.Fatal("rebuilt InputSpec of unchanged parent: expected pointer reuse")
	}
	if st2.ReusedSteps != len(sub2.Columns()) {
		t.Fatalf("ReusedSteps = %d, want %d", st2.ReusedSteps, len(sub2.Columns()))
	}

	// An edit to an input constraint flows through the rebuild.
	mustDo(t, spec.Constrain("dirpv", `dirpv <> NULL`))
	sub3, err := InputSpec(spec)
	mustDo(t, err)
	t3, _, err := inc.SolveSpec(sub3)
	if err != nil {
		t.Fatal(err)
	}
	want3, _, err := GenerateInputs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := tableBytes(t, t3), tableBytes(t, want3); g != w {
		t.Fatalf("after input edit, incremental diverged:\n%s\nvs\n%s", g, w)
	}
}

func TestIncrementalSolverInconsistentSpec(t *testing.T) {
	spec := NewSpec("empty")
	mustDo(t, spec.AddInput("a", "lo", "hi"))
	mustDo(t, spec.AddInput("b", "go"))
	mustDo(t, spec.Constrain("a", `a <> NULL`))
	mustDo(t, spec.Constrain("b", `a = lo and a = hi`)) // unsatisfiable
	inc := NewIncrementalSolver(spec, Options{})

	t1, _, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if t1.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", t1.NumRows())
	}
	// Re-solving an aborted spec must converge and stay empty.
	t2, _, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", t2.NumRows())
	}
	// Fixing the contradiction re-runs from the dirty step.
	mustDo(t, spec.Constrain("b", `b = go`))
	t3, st, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumRows() == 0 {
		t.Fatal("fixed spec still empty")
	}
	if st.ReusedSteps == 0 {
		t.Fatal("expected prefix reuse after fixing the last constraint")
	}
	want, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := tableBytes(t, t3), tableBytes(t, want); g != w {
		t.Fatalf("fixed spec diverged:\n%s\nvs\n%s", g, w)
	}
}
