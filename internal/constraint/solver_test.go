package constraint

import (
	"errors"
	"math/rand"
	"testing"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// figure3Spec builds the readex fragment of the paper's directory table
// (Fig. 3): 3 input columns, 5 output columns.
func figure3Spec(t testing.TB) *Spec {
	s := NewSpec("D_readex")
	mustDo(t, s.AddInput("inmsg", "readex", "data", "idone"))
	mustDo(t, s.AddInput("dirst", "I", "SI", "Busy-sd", "Busy-d", "Busy-s"))
	mustDo(t, s.AddInput("dirpv", "zero", "one", "gone"))
	mustDo(t, s.AddOutput("locmsg", "compl-data"))
	mustDo(t, s.AddOutput("remmsg", "sinv"))
	mustDo(t, s.AddOutput("memmsg", "mread"))
	mustDo(t, s.AddOutput("nxtdirst", "MESI", "Busy-sd", "Busy-d", "Busy-s"))
	mustDo(t, s.AddOutput("nxtdirpv", "repl", "dec"))

	// Legal input combinations for the readex transaction fragment.
	mustDo(t, s.Constrain("inmsg", `inmsg <> NULL`))
	mustDo(t, s.Constrain("dirst",
		`inmsg = readex ? (dirst = I and dirpv = zero) or (dirst = SI and dirpv <> zero) :
		 inmsg = data ? dirst = Busy-sd or dirst = Busy-d :
		 dirst = Busy-sd or dirst = Busy-s`))
	mustDo(t, s.Constrain("dirpv",
		`inmsg = data and dirst = Busy-d ? dirpv = zero :
		 inmsg = idone and dirst = Busy-s ? dirpv = zero :
		 inmsg = readex and dirst = I ? dirpv = zero : dirpv <> NULL`))

	// Output behaviour.
	mustDo(t, s.Constrain("remmsg", `inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL`))
	mustDo(t, s.Constrain("memmsg", `inmsg = readex ? memmsg = mread : memmsg = NULL`))
	mustDo(t, s.Constrain("locmsg",
		`(inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
		 locmsg = compl-data : locmsg = NULL`))
	mustDo(t, s.Constrain("nxtdirst",
		`inmsg = readex and dirst = I ? nxtdirst = Busy-d :
		 inmsg = readex ? nxtdirst = Busy-sd :
		 inmsg = data and dirst = Busy-sd ? nxtdirst = Busy-s :
		 inmsg = idone and dirst = Busy-sd ? nxtdirst = Busy-d :
		 nxtdirst = MESI`))
	mustDo(t, s.Constrain("nxtdirpv",
		`(inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
		 nxtdirpv = repl :
		 inmsg = idone and dirst = Busy-sd ? nxtdirpv = dec : nxtdirpv = NULL`))
	return s
}

func mustDo(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpecConstruction(t *testing.T) {
	s := NewSpec("t")
	mustDo(t, s.AddInput("a", "1", "2"))
	mustDo(t, s.AddOutput("b", "x"))
	if err := s.AddInput("a", "3"); !errors.Is(err, ErrDupColumn) {
		t.Fatalf("err = %v", err)
	}
	if err := s.AddColumn(Column{Name: "c", NoNull: true}); !errors.Is(err, ErrEmptyDomain) {
		t.Fatalf("err = %v", err)
	}
	if got := s.InputNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("inputs = %v", got)
	}
	if got := s.OutputNames(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("outputs = %v", got)
	}
	if !s.HasColumn("a") || s.HasColumn("zz") {
		t.Fatal("HasColumn")
	}
}

func TestConstrainValidation(t *testing.T) {
	s := NewSpec("t")
	mustDo(t, s.AddInput("a", "1", "2"))
	if err := s.Constrain("ghost", `a = 1`); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Constrain("a", `a = `); err == nil {
		t.Fatal("bad syntax must error")
	}
	// Qualified references are not allowed in the constraint dialect.
	if err := s.Constrain("a", `T.b = 1`); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	mustDo(t, s.Constrain("a", `a = "1"`))
	if s.ConstraintCount() != 1 || s.Constraint("a") == nil {
		t.Fatal("constraint not stored")
	}
}

func TestColumnDomainIncludesNull(t *testing.T) {
	c := Column{Name: "x", Values: []string{"a"}}
	d := c.Domain()
	if len(d) != 2 || !d[0].IsNull() {
		t.Fatalf("domain = %v", d)
	}
	c.NoNull = true
	if d := c.Domain(); len(d) != 1 || d[0].IsNull() {
		t.Fatalf("NoNull domain = %v", d)
	}
}

func TestSolveFigure3(t *testing.T) {
	tab, stats, err := Solve(figure3Spec(t))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Empty() {
		t.Fatal("figure 3 table is empty")
	}
	if stats.Rows != tab.NumRows() || stats.Steps != 8 {
		t.Fatalf("stats = %+v", stats)
	}
	// The Fig. 3 rows must be present. Row 2 of the figure:
	// readex, SI, gone -> sinv, mread, Busy-sd, dec(nothing in fig: repl?).
	found := tab.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("readex")) &&
			r.Get("dirst").Equal(rel.S("SI")) &&
			r.Get("remmsg").Equal(rel.S("sinv")) &&
			r.Get("memmsg").Equal(rel.S("mread")) &&
			r.Get("nxtdirst").Equal(rel.S("Busy-sd"))
	})
	if found.Empty() {
		t.Fatalf("readex@SI row missing:\n%s", tab)
	}
	// No row may have an illegal input combination: readex at Busy states
	// was excluded by the dirst constraint.
	bad := tab.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("readex")) &&
			(r.Get("dirst").Equal(rel.S("Busy-sd")) || r.Get("dirst").Equal(rel.S("Busy-d")))
	})
	if !bad.Empty() {
		t.Fatalf("illegal rows generated:\n%s", bad)
	}
}

func TestSolveStepStats(t *testing.T) {
	spec := figure3Spec(t)
	tab, stats, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StepStats) != stats.Steps {
		t.Fatalf("len(StepStats) = %d, Steps = %d", len(stats.StepStats), stats.Steps)
	}
	var cand, memo uint64
	for i, st := range stats.StepStats {
		if st.Column != spec.cols[i].Name {
			t.Errorf("step %d column = %q, want %q", i, st.Column, spec.cols[i].Name)
		}
		if st.Domain != len(spec.cols[i].Domain()) {
			t.Errorf("step %d domain = %d, want %d", i, st.Domain, len(spec.cols[i].Domain()))
		}
		if st.Candidates == 0 {
			t.Errorf("step %d tested no candidates", i)
		}
		cand += st.Candidates
		memo += st.MemoHits
	}
	if cand != stats.Candidates || memo != stats.MemoHits {
		t.Errorf("step sums candidates=%d memo=%d, totals %d/%d",
			cand, memo, stats.Candidates, stats.MemoHits)
	}
	if last := stats.StepStats[len(stats.StepStats)-1]; last.Rows != tab.NumRows() {
		t.Errorf("final step rows = %d, table has %d", last.Rows, tab.NumRows())
	}
}

func TestSolveMatchesMonolithic(t *testing.T) {
	spec := figure3Spec(t)
	inc, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	mono, _, err := Monolithic(spec)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := inc.EqualRows(mono)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("incremental (%d rows) and monolithic (%d rows) disagree",
			inc.NumRows(), mono.NumRows())
	}
	if inc.NumRows() != mono.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", inc.NumRows(), mono.NumRows())
	}
}

func TestSolveCandidatesFarFewerThanMonolithic(t *testing.T) {
	spec := figure3Spec(t)
	_, si, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, sm, err := Monolithic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if si.Candidates*10 > sm.Candidates {
		t.Fatalf("incremental tested %d candidates, monolithic %d; expected >10x gap",
			si.Candidates, sm.Candidates)
	}
}

func TestInconsistentConstraintsGiveEmptyTable(t *testing.T) {
	s := NewSpec("empty")
	mustDo(t, s.AddInput("a", "1", "2"))
	mustDo(t, s.AddInput("b", "x"))
	mustDo(t, s.Constrain("a", `a = "1"`))
	mustDo(t, s.Constrain("b", `a = "2"`)) // contradicts
	tab, _, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Empty() {
		t.Fatalf("inconsistent spec produced %d rows", tab.NumRows())
	}
	mono, _, err := Monolithic(s)
	if err != nil || !mono.Empty() {
		t.Fatalf("monolithic: %v, %d rows", err, mono.NumRows())
	}
}

func TestUnconstrainedSpecIsFullCross(t *testing.T) {
	s := NewSpec("full")
	mustDo(t, s.AddColumn(Column{Name: "a", Values: []string{"1", "2"}, NoNull: true}))
	mustDo(t, s.AddColumn(Column{Name: "b", Values: []string{"x", "y", "z"}, NoNull: true}))
	tab, _, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tab.NumRows())
	}
}

func TestForwardReferencesDefer(t *testing.T) {
	// A constraint on an early column referencing a later column must be
	// applied when the later column appears.
	s := NewSpec("fwd")
	mustDo(t, s.AddInput("a", "1", "2"))
	mustDo(t, s.AddOutput("b", "1", "2"))
	mustDo(t, s.Constrain("a", `a = b and a <> NULL`)) // references b (later)
	tab, _, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (diagonal)\n%s", tab.NumRows(), tab)
	}
	for i := 0; i < tab.NumRows(); i++ {
		if !tab.Get(i, "a").Equal(tab.Get(i, "b")) {
			t.Fatal("diagonal constraint violated")
		}
	}
}

func TestMonolithicSpaceLimit(t *testing.T) {
	s := NewSpec("big")
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		mustDo(t, s.AddInput(n, "1", "2", "3", "4", "5", "6", "7", "8", "9"))
	}
	_, _, err := MonolithicOpts(s, Options{MonolithicLimit: 1000})
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("err = %v", err)
	}
	if s.SpaceSize() != 10_000_000_000 {
		t.Fatalf("space = %d", s.SpaceSize())
	}
}

func TestSpaceSizeSaturates(t *testing.T) {
	s := NewSpec("huge")
	for i := 0; i < 40; i++ {
		mustDo(t, s.AddInput(string(rune('a'+i)), "1", "2", "3", "4", "5", "6", "7", "8", "9"))
	}
	if s.SpaceSize() != uint64(1)<<62 {
		t.Fatalf("space = %d, want saturation", s.SpaceSize())
	}
}

func TestGenerateInputs(t *testing.T) {
	spec := figure3Spec(t)
	in, _, err := GenerateInputs(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Columns(); len(got) != 3 {
		t.Fatalf("input columns = %v", got)
	}
	full, _, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Every legal input combination of the full table appears in the
	// inputs table (the converse need not hold: output constraints that
	// also mention inputs can prune further).
	proj, err := full.Project("inmsg", "dirst", "dirpv")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := in.ContainsAll(proj.SetName(in.Name()).Distinct())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("inputs table misses combinations present in the full table")
	}
}

func TestRegisteredFuncInConstraint(t *testing.T) {
	s := NewSpec("fn")
	mustDo(t, s.AddInput("m", "readex", "data"))
	s.RegisterFunc("isrequest", func(args []rel.Value) (rel.Value, error) {
		return rel.B(args[0].Str() == "readex"), nil
	})
	mustDo(t, s.Constrain("m", `isrequest(m)`))
	tab, _, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 || !tab.Get(0, "m").Equal(rel.S("readex")) {
		t.Fatalf("table:\n%s", tab)
	}
}

func TestSolveSingleWorkerMatchesParallel(t *testing.T) {
	spec := figure3Spec(t)
	one, _, err := SolveOpts(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := SolveOpts(spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := one.EqualRows(many)
	if err != nil || !eq {
		t.Fatalf("parallel result differs: %v", err)
	}
}

// Property: on random small specs, Solve and Monolithic agree exactly.
func TestQuickSolveEqualsMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		s := randomSpec(rng)
		inc, _, err := Solve(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mono, _, err := Monolithic(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eq, err := inc.EqualRows(mono)
		if err != nil || !eq {
			t.Fatalf("trial %d: incremental %d rows != monolithic %d rows",
				trial, inc.NumRows(), mono.NumRows())
		}
	}
}

// randomSpec builds a small random spec whose constraints compare columns
// with values and each other.
func randomSpec(rng *rand.Rand) *Spec {
	s := NewSpec("rand")
	vals := []string{"p", "q", "r"}
	ncols := 2 + rng.Intn(3)
	names := make([]string, ncols)
	for i := 0; i < ncols; i++ {
		names[i] = string(rune('a' + i))
		n := 1 + rng.Intn(3)
		if i < ncols/2 {
			_ = s.AddInput(names[i], vals[:n]...)
		} else {
			_ = s.AddOutput(names[i], vals[:n]...)
		}
	}
	// Attach 0-2 random constraints.
	for k := 0; k < rng.Intn(3); k++ {
		col := names[rng.Intn(ncols)]
		other := names[rng.Intn(ncols)]
		v := vals[rng.Intn(len(vals))]
		var expr string
		switch rng.Intn(4) {
		case 0:
			expr = col + ` = "` + v + `"`
		case 1:
			expr = col + ` <> NULL`
		case 2:
			expr = col + ` = ` + other
		default:
			expr = other + ` = "` + v + `" ? ` + col + ` = "` + v + `" : ` + col + ` = NULL`
		}
		if err := s.Constrain(col, expr); err != nil {
			panic(err)
		}
	}
	return s
}

// Property: adding a constraint never adds rows (monotone pruning).
func TestQuickConstraintsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		s := randomSpec(rng)
		before, _, err := Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		// Tighten: first column must be non-NULL.
		col := s.ColumnNames()[0]
		if s.Constraint(col) != nil {
			continue // keep the test simple: only unconstrained columns
		}
		if err := s.Constrain(col, col+` <> NULL`); err != nil {
			t.Fatal(err)
		}
		after, _, err := Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		if after.NumRows() > before.NumRows() {
			t.Fatalf("trial %d: tightening grew table %d -> %d",
				trial, before.NumRows(), after.NumRows())
		}
		ok, err := before.ContainsAll(after)
		if err != nil || !ok {
			t.Fatalf("trial %d: tightened table not a subset", trial)
		}
	}
}

var _ = sqlmini.MapEnv{} // keep the import for doc reference
