package constraint

import (
	"sync/atomic"

	"coherdb/internal/rel"
)

// codeArena hands out dictionary-code row slices carved from chunks,
// replacing the per-candidate make+copy that dominated the solver's
// allocation profile. Rows stay valid forever (chunks are never reused),
// so accepted rows can be stored directly in the result table. Chunks
// grow geometrically from arenaChunkMin to arenaChunkMax, so the many
// short-lived per-worker arenas (one per worker per extension step) waste
// at most about as much as they use. A code is 4 bytes where a rel.Value
// is 40, so a chunk now covers 10x the rows it used to. Not safe for
// concurrent use: each solver worker owns its own arena.
type codeArena struct {
	buf  []uint32
	next int // next chunk size in codes
}

// Arena chunk sizing in codes.
const (
	arenaChunkMin = 256
	arenaChunkMax = 8192
)

// row returns a zeroed slice of n codes with capacity exactly n, so an
// accidental append can never clobber a neighbouring row.
func (a *codeArena) row(n int) []uint32 {
	if len(a.buf) < n {
		if a.next < arenaChunkMin {
			a.next = arenaChunkMin
		}
		size := a.next
		if size < n {
			size = n
		}
		if a.next < arenaChunkMax {
			a.next *= 2
		}
		a.buf = make([]uint32, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// reserve makes the next n codes carve from a single exactly-sized chunk
// when the current one is too small — for callers that know a batch's
// total demand up front.
func (a *codeArena) reserve(n int) {
	if len(a.buf) < n {
		a.buf = make([]uint32, n)
	}
}

// groupTable maps projection keys to dense group ids without allocating
// per key: key bytes live in one shared growing arena and the table is
// open-addressed, so a solve's grouping cost is a handful of amortized
// slice growths instead of one string allocation per distinct projection.
type groupTable struct {
	arena   []byte  // all key bytes, concatenated
	offs    []int32 // per group: start of its key in arena
	ends    []int32 // per group: end of its key in arena
	slots   []int32 // open-addressed: group id + 1, 0 = empty
	mask    uint64  // len(slots) - 1
	entries int
}

func newGroupTable(hint int) *groupTable {
	size := 16
	for size < hint*2 {
		size *= 2
	}
	return &groupTable{slots: make([]int32, size), mask: uint64(size - 1)}
}

// intern returns the dense group id for key, adding it if new. Keys hash
// with rel.HashBytes — the one canonical FNV-1a shared with the join
// hash table, replacing the private copy that used to live here.
func (t *groupTable) intern(key []byte) int32 {
	h := rel.HashBytes(key)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := t.slots[i]
		if s == 0 {
			g := int32(len(t.offs))
			t.arena = append(t.arena, key...)
			end := int32(len(t.arena))
			t.offs = append(t.offs, end-int32(len(key)))
			t.ends = append(t.ends, end)
			t.slots[i] = g + 1
			t.entries++
			if uint64(t.entries)*4 > uint64(len(t.slots))*3 {
				t.grow()
			}
			return g
		}
		g := s - 1
		if k := t.arena[t.offs[g]:t.ends[g]]; string(k) == string(key) {
			return g
		}
	}
}

func (t *groupTable) grow() {
	slots := make([]int32, len(t.slots)*2)
	mask := uint64(len(slots) - 1)
	for g := range t.offs {
		h := rel.HashBytes(t.arena[t.offs[g]:t.ends[g]])
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(g) + 1
	}
	t.slots, t.mask = slots, mask
}

// batchCursor deals contiguous [lo, hi) batches of the index space [0, n)
// to competing workers through one atomic counter. Compared to the static
// per-worker split it replaces, workers that hit cheap (quickly pruned)
// regions immediately steal the next batch instead of idling, and the
// partitioning cannot lose indexes to integer division (the old
// per = n/workers split degenerated when n < workers). Every index in
// [0, n) is handed out exactly once; batch k covers
// [k*batch, min((k+1)*batch, n)), so results collected per batch index
// reassemble in deterministic input order.
type batchCursor struct {
	next  atomic.Uint64
	n     uint64
	batch uint64
}

// newBatchCursor sizes batches so each worker gets several turns (for
// stealing to matter) without making the batch bookkeeping dominate.
func newBatchCursor(n uint64, workers int) *batchCursor {
	if workers < 1 {
		workers = 1
	}
	batch := n / (uint64(workers) * 8)
	if batch < 1 {
		batch = 1
	}
	return &batchCursor{n: n, batch: batch}
}

// numBatches returns how many batches the cursor will deal.
func (c *batchCursor) numBatches() int {
	if c.n == 0 {
		return 0
	}
	return int((c.n + c.batch - 1) / c.batch)
}

// grab claims the next batch. It returns the batch ordinal and its index
// range; ok is false once the space is exhausted.
func (c *batchCursor) grab() (idx int, lo, hi uint64, ok bool) {
	l := c.next.Add(c.batch) - c.batch
	if l >= c.n {
		return 0, 0, 0, false
	}
	h := l + c.batch
	if h > c.n {
		h = c.n
	}
	return int(l / c.batch), l, h, true
}
