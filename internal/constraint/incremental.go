package constraint

import (
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
)

// stepSig identifies what a solve step depends on: the column it appends,
// the interned domain it sweeps, and the constraints that fire at it. Two
// steps with equal signatures over equal input rows produce equal output
// rows, so a memoized step whose signature still matches can be skipped.
type stepSig struct {
	column string
	domain []uint32
	fire   []fireSig
}

// fireSig names one firing constraint by column and the mutation stamp of
// its last Constrain call. Expressions themselves are not comparable
// (several AST nodes hold slices), so the stamp stands in for identity:
// re-constraining a column bumps its stamp and dirties exactly the steps
// it fires at.
type fireSig struct {
	col string
	gen uint64
}

// stepMemo is one completed step of the previous solve: its signature,
// the partial table after the step, and the step's recorded stats.
type stepMemo struct {
	sig  stepSig
	rows [][]uint32
	stat StepStat
}

// IncrementalSolver re-solves a spec across small edits, reusing the
// per-step partial tables of the previous solve. Each column-extension
// step is memoized with its signature (column, domain codes, firing
// constraints); a re-solve replays the memo until the first step whose
// signature changed and re-executes only from there. When every step
// matches, the previous result table is returned by pointer — so a
// delta.Tracker sees the table as untouched and downstream checking
// skips entirely.
//
// The solver assumes registered functions are pure: results are memoized
// across calls, so a function whose behavior changes without a
// RegisterFunc call yields stale rows. Re-registering (even the same
// name) invalidates the whole memo.
//
// An IncrementalSolver is not safe for concurrent use.
type IncrementalSolver struct {
	opts Options

	spec    *Spec
	funcGen uint64
	memo    []stepMemo
	out     *rel.Table
	outRev  uint64
	valid   bool
}

// NewIncrementalSolver creates a solver for spec. The first Solve runs
// every step and seeds the memo.
func NewIncrementalSolver(spec *Spec, opts Options) *IncrementalSolver {
	return &IncrementalSolver{spec: spec, opts: opts}
}

// Solve re-solves the current spec, reusing memoized steps where the
// signatures still match. Results are byte-identical to SolveOpts on the
// same spec; Stats.ReusedSteps reports how many leading steps were served
// from the memo, and Candidates/Pruned/MemoHits/StepStats cover only the
// re-executed suffix.
func (s *IncrementalSolver) Solve() (*rel.Table, Stats, error) {
	return s.SolveSpec(s.spec)
}

// SolveSpec is Solve against a replacement spec — typically a rebuilt
// projection of the original, such as InputSpec output, whose inherited
// mutation stamps let the memo carry across the rebuild. The solver
// adopts spec for subsequent calls.
func (s *IncrementalSolver) SolveSpec(spec *Spec) (_ *rel.Table, stats Stats, err error) {
	s.spec = spec
	span := obs.StartSpan(s.opts.Tracer, "constraint.solve_incremental", obs.String("controller", spec.Name))
	defer func() { s.opts.observe(span, spec.Name, stats, err) }()

	t0 := time.Now()
	cc, err := spec.compiledConstraints()
	stats.CompileTime = time.Since(t0)
	if err != nil {
		s.valid = false
		return nil, stats, err
	}
	fireAt := make([][]compiledConstraint, len(spec.cols))
	for _, c := range cc {
		fireAt[c.fire] = append(fireAt[c.fire], c)
	}

	// A re-registered function can change any constraint's meaning without
	// touching its expression; drop everything.
	if spec.funcGen != s.funcGen {
		s.memo, s.out, s.valid = nil, nil, false
		s.funcGen = spec.funcGen
	}

	// Walk the memo prefix while signatures match. Domains are interned
	// here once and handed to the re-execution loop below.
	domains := make([][]uint32, len(spec.cols))
	reuse := 0
	if s.valid {
		for i, col := range spec.cols {
			if i >= len(s.memo) {
				break
			}
			m := &s.memo[i]
			if m.sig.column != col.Name {
				break
			}
			domains[i] = encodeDomain(col.Domain())
			if !equalCodes(domains[i], m.sig.domain) {
				break
			}
			if !sameFire(fireAt[i], m.sig.fire, spec) {
				break
			}
			reuse = i + 1
		}
	}
	stats.ReusedSteps = reuse
	stats.Steps = reuse
	span.SetAttr(obs.Int("total_steps", len(spec.cols)))

	if reuse == len(spec.cols) && reuse == len(s.memo) && s.out != nil {
		// Nothing changed. Hand back the previous table by pointer so a
		// delta.Tracker's identity fast path reports it untouched —
		// unless a caller mutated it since (its revision moved), in which
		// case rebuild a fresh table from the memoized rows.
		if s.out.Revision() == s.outRev {
			stats.Rows = s.out.NumRows()
			return s.out, stats, nil
		}
		return s.emit(stats)
	}

	cur := [][]uint32{{}}
	if reuse > 0 {
		cur = s.memo[reuse-1].rows
	}
	s.memo = s.memo[:reuse]
	workers := s.opts.workers()

	for i := reuse; i < len(spec.cols); i++ {
		col := spec.cols[i]
		stats.Steps++
		t0 := time.Now()
		stepSpan := span.Child("constraint.step", obs.String("column", col.Name))

		fire := fireAt[i]
		var fireRefs []int
		seenRef := make([]bool, i+1)
		for _, c := range fire {
			for _, pos := range c.refs {
				if !seenRef[pos] {
					seenRef[pos] = true
					fireRefs = append(fireRefs, pos)
				}
			}
		}

		domain := domains[i]
		if domain == nil {
			domain = encodeDomain(col.Domain())
		}
		next, est, err := extendCompiled(cur, i+1, domain, fire, fireRefs, workers)
		if err != nil {
			s.valid = false
			stepSpan.Finish()
			return nil, stats, err
		}
		stats.Candidates += est.tested
		stats.MemoHits += est.memoHits
		stats.Pruned += est.tested - uint64(len(next))
		cur = next
		st := StepStat{
			Column:     col.Name,
			Domain:     len(domain),
			Rows:       len(cur),
			Candidates: est.tested,
			MemoHits:   est.memoHits,
			Elapsed:    time.Since(t0),
		}
		stats.StepStats = append(stats.StepStats, st)
		s.memo = append(s.memo, stepMemo{
			sig:  stepSig{column: col.Name, domain: domain, fire: fireSigs(fire, spec)},
			rows: cur,
			stat: st,
		})
		stepSpan.SetAttr(
			obs.Int("domain", len(domain)),
			obs.Int("rows", len(cur)),
			obs.Uint64("candidates", est.tested),
			obs.Uint64("memo_hits", est.memoHits),
		)
		stepSpan.Finish()
		if len(cur) == 0 {
			break // inconsistent constraints: empty table (paper §3)
		}
	}
	return s.emit(stats)
}

// emit materializes the final memoized rows into a fresh result table and
// records it (with its revision) for pointer reuse on the next solve.
func (s *IncrementalSolver) emit(stats Stats) (*rel.Table, Stats, error) {
	spec := s.spec
	out, err := rel.NewTable(spec.Name, spec.ColumnNames()...)
	if err != nil {
		s.valid = false
		return nil, stats, err
	}
	if n := len(s.memo); n > 0 {
		for _, row := range s.memo[n-1].rows {
			if len(row) != len(spec.cols) {
				break // solve aborted early on inconsistency
			}
			if err := out.AppendCodeRow(row); err != nil {
				s.valid = false
				return nil, stats, err
			}
		}
	}
	stats.Rows = out.NumRows()
	s.out, s.outRev, s.valid = out, out.Revision(), true
	return out, stats, nil
}

// Invalidate drops the memo; the next Solve re-executes every step.
func (s *IncrementalSolver) Invalidate() {
	s.memo, s.out, s.valid = nil, nil, false
}

func fireSigs(fire []compiledConstraint, spec *Spec) []fireSig {
	if len(fire) == 0 {
		return nil
	}
	out := make([]fireSig, len(fire))
	for i, c := range fire {
		out[i] = fireSig{col: c.col, gen: spec.conGen[c.col]}
	}
	return out
}

func sameFire(fire []compiledConstraint, sig []fireSig, spec *Spec) bool {
	if len(fire) != len(sig) {
		return false
	}
	for i, c := range fire {
		if sig[i].col != c.col || sig[i].gen != spec.conGen[c.col] {
			return false
		}
	}
	return true
}

func equalCodes(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
