// Package constraint implements the paper's column-constraint language and
// table generation (§3): a controller table is described by one column table
// per column (the legal values, plus NULL meaning dontcare for inputs and
// noop for outputs) and one boolean constraint per column. Solving the
// conjunction of the column constraints yields the controller table — the
// set of all satisfying assignments, one row per assignment.
//
// Two solvers are provided. Solve is the incremental algorithm the paper
// deploys: columns are added one at a time and every constraint is applied
// as soon as the columns it mentions are all present, so pruning happens
// early and intermediate relations stay small ("a few minutes"). Monolithic
// enumerates the full cross product and tests the whole conjunction only on
// complete assignments — the paper's "around 6 hours" baseline — and is
// exponential in the number of columns.
package constraint

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Errors returned by spec construction and solving.
var (
	ErrDupColumn   = errors.New("constraint: duplicate column")
	ErrNoColumn    = errors.New("constraint: no such column")
	ErrEmptyDomain = errors.New("constraint: column has empty domain")
	ErrSpaceLimit  = errors.New("constraint: monolithic search space exceeds limit")
)

// ColumnKind distinguishes the input columns of a controller state machine
// from its output columns.
type ColumnKind uint8

// Column kinds.
const (
	Input ColumnKind = iota
	Output
)

func (k ColumnKind) String() string {
	if k == Input {
		return "input"
	}
	return "output"
}

// Column is one column of a controller table: its name, kind, and legal
// value domain. NULL is always a member of the domain (dontcare/noop) unless
// NoNull is set.
type Column struct {
	Name   string
	Kind   ColumnKind
	Values []string
	NoNull bool
}

// Domain returns the column table: the legal values of the column, with
// NULL first unless suppressed.
func (c Column) Domain() []rel.Value {
	out := make([]rel.Value, 0, len(c.Values)+1)
	if !c.NoNull {
		out = append(out, rel.Null())
	}
	for _, v := range c.Values {
		out = append(out, rel.S(v))
	}
	return out
}

// Spec is a controller table specification: ordered columns and one
// constraint per column. It corresponds to the paper's "database input":
// table schema, column tables, and SQL column constraints.
type Spec struct {
	Name        string
	cols        []Column
	colIdx      map[string]int
	constraints map[string]sqlmini.Expr
	funcs       map[string]sqlmini.Func

	// Compiled-kernel cache: the column constraints lowered to position-
	// bound programs, built lazily on first solve and reused until the spec
	// changes. Guarded by mu so concurrent solves of one spec share it.
	mu       sync.Mutex
	compiled []compiledConstraint

	// Incremental-solve bookkeeping: genCtr is a monotone mutation stamp;
	// conGen records the stamp of the last Constrain per column and funcGen
	// the stamp of the last RegisterFunc. IncrementalSolver memo entries
	// key on these, so a re-constrained column dirties exactly the steps
	// its constraint fires at, while a re-registered function (whose
	// behavior the solver cannot inspect) dirties everything.
	genCtr  uint64
	conGen  map[string]uint64
	funcGen uint64
}

// NewSpec creates an empty specification for a controller table.
func NewSpec(name string) *Spec {
	return &Spec{
		Name:        name,
		colIdx:      make(map[string]int),
		constraints: make(map[string]sqlmini.Expr),
		funcs:       make(map[string]sqlmini.Func),
		conGen:      make(map[string]uint64),
	}
}

// AddInput declares an input column with the given legal values.
func (s *Spec) AddInput(name string, values ...string) error {
	return s.add(Column{Name: name, Kind: Input, Values: values})
}

// AddOutput declares an output column with the given legal values.
func (s *Spec) AddOutput(name string, values ...string) error {
	return s.add(Column{Name: name, Kind: Output, Values: values})
}

// AddColumn declares a fully specified column.
func (s *Spec) AddColumn(c Column) error { return s.add(c) }

func (s *Spec) add(c Column) error {
	if _, dup := s.colIdx[c.Name]; dup {
		return fmt.Errorf("%w: %q in spec %q", ErrDupColumn, c.Name, s.Name)
	}
	if len(c.Values) == 0 && c.NoNull {
		return fmt.Errorf("%w: %q in spec %q", ErrEmptyDomain, c.Name, s.Name)
	}
	s.colIdx[c.Name] = len(s.cols)
	s.cols = append(s.cols, c)
	s.invalidate()
	return nil
}

// invalidate drops the compiled-kernel cache after a spec mutation.
func (s *Spec) invalidate() {
	s.mu.Lock()
	s.compiled = nil
	s.mu.Unlock()
}

// Columns returns the declared columns in order (inputs and outputs
// interleaved as declared).
func (s *Spec) Columns() []Column { return append([]Column(nil), s.cols...) }

// ColumnNames returns the declared column names in order.
func (s *Spec) ColumnNames() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// InputNames returns the input column names in declaration order.
func (s *Spec) InputNames() []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind == Input {
			out = append(out, c.Name)
		}
	}
	return out
}

// OutputNames returns the output column names in declaration order.
func (s *Spec) OutputNames() []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind == Output {
			out = append(out, c.Name)
		}
	}
	return out
}

// HasColumn reports whether name is declared.
func (s *Spec) HasColumn(name string) bool {
	_, ok := s.colIdx[name]
	return ok
}

// RegisterFunc makes fn callable from constraints (e.g. isrequest).
func (s *Spec) RegisterFunc(name string, fn sqlmini.Func) {
	s.funcs[name] = fn
	s.genCtr++
	s.funcGen = s.genCtr
	s.invalidate()
}

// Constrain attaches the column constraint for col, given in the paper's
// dialect: a (possibly ternary) boolean expression over column names and
// bare symbolic values, e.g.
//
//	inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
//
// Bare identifiers that are not column names are resolved to string values.
// A column with no constraint is unconstrained (constraint true).
func (s *Spec) Constrain(col, expr string) error {
	if !s.HasColumn(col) {
		return fmt.Errorf("%w: %q in spec %q", ErrNoColumn, col, s.Name)
	}
	// The constraint vocabulary is fixed per protocol and re-parsed on
	// every solver run; the cached parse shares an immutable tree, and
	// ResolveSymbols builds new nodes rather than mutating it.
	e, err := sqlmini.ParseExprCached(expr)
	if err != nil {
		return fmt.Errorf("constraint for %s.%s: %w", s.Name, col, err)
	}
	resolved := sqlmini.ResolveSymbols(e, s.HasColumn)
	// Validate that every referenced column exists after resolution
	// (qualified references are not part of the constraint dialect).
	for ref := range sqlmini.Columns(resolved) {
		if !s.HasColumn(ref) {
			return fmt.Errorf("%w: constraint for %s.%s references %q", ErrNoColumn, s.Name, col, ref)
		}
	}
	s.constraints[col] = resolved
	s.genCtr++
	s.conGen[col] = s.genCtr
	s.invalidate()
	return nil
}

// MustConstrain is Constrain that panics on error; for statically known
// protocol specs.
func (s *Spec) MustConstrain(col, expr string) {
	if err := s.Constrain(col, expr); err != nil {
		panic(err)
	}
}

// Constraint returns the parsed constraint for col, or nil if the column is
// unconstrained.
func (s *Spec) Constraint(col string) sqlmini.Expr { return s.constraints[col] }

// ConstraintCount returns the number of attached constraints.
func (s *Spec) ConstraintCount() int { return len(s.constraints) }

// SpaceSize returns the size of the full assignment space (the product of
// the domain sizes), saturating at 2^62 to avoid overflow.
func (s *Spec) SpaceSize() uint64 {
	const sat = uint64(1) << 62
	size := uint64(1)
	for _, c := range s.cols {
		d := uint64(len(c.Domain()))
		if d == 0 {
			return 0
		}
		if size > sat/d {
			return sat
		}
		size *= d
	}
	return size
}

// evaluator builds the expression evaluator for this spec (constraint
// dialect: NULL is an ordinary domain value).
func (s *Spec) evaluator() *sqlmini.Evaluator {
	return &sqlmini.Evaluator{Funcs: s.funcs, NullEq: true}
}

// Evaluator returns the spec's constraint-dialect evaluator (registered
// functions, NULL as an ordinary domain value). Exposed so callers can
// cross-check compiled constraint kernels against tree-walking evaluation.
func (s *Spec) Evaluator() *sqlmini.Evaluator { return s.evaluator() }

// ColumnIndex returns the position of every declared column in row order —
// the binding the constraint compiler uses to lower column references to
// positional loads.
func (s *Spec) ColumnIndex() map[string]int {
	out := make(map[string]int, len(s.colIdx))
	for n, i := range s.colIdx {
		out[n] = i
	}
	return out
}

// compiledConstraint is one column constraint lowered to a compiled
// program, plus its scheduling metadata: the row positions it reads and
// the step at which it becomes checkable.
type compiledConstraint struct {
	col   string
	prog  *sqlmini.Program
	sweep *sqlmini.SweepProg // column-at-a-time form of prog over the fire column
	refs  []int              // row positions the constraint reads, own column included
	fire  int                // max referenced position: the step the constraint fires at
}

// compiledConstraints lowers every column constraint into a position-bound
// closure program, cached on the spec until the next mutation. Each
// program is sweep-compiled around the column added at its firing step, so
// the incremental solver's domain sweep evaluates subtrees over earlier
// columns once per candidate row instead of once per (row, value) pair.
// The returned slice is shared and must not be mutated.
func (s *Spec) compiledConstraints() ([]compiledConstraint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compiled != nil {
		return s.compiled, nil
	}
	ev := s.evaluator()
	out := make([]compiledConstraint, 0, len(s.constraints))
	for col, e := range s.constraints {
		cc := compiledConstraint{col: col}
		names := sqlmini.Columns(e)
		names[col] = struct{}{}
		for n := range names {
			p := s.colIdx[n]
			cc.refs = append(cc.refs, p)
			if p > cc.fire {
				cc.fire = p
			}
		}
		sort.Ints(cc.refs)
		prog, err := ev.CompileSweep(e, s.colIdx, cc.fire)
		if err != nil {
			return nil, fmt.Errorf("constraint: compiling constraint for %s.%s: %w", s.Name, col, err)
		}
		cc.prog = prog
		// The vectorized sweep accepts exactly what CompileSweep accepts
		// (irreducible subtrees lower to a looped scalar closure), so a
		// failure here is the same class of spec error.
		cc.sweep, err = ev.CompileSweepVec(e, s.colIdx, cc.fire)
		if err != nil {
			return nil, fmt.Errorf("constraint: compiling constraint for %s.%s: %w", s.Name, col, err)
		}
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fire != out[j].fire {
			return out[i].fire < out[j].fire
		}
		return out[i].col < out[j].col
	})
	s.compiled = out
	return out, nil
}
