package constraint

import (
	"fmt"
	"runtime"
	"sync"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Stats reports the work done by a solve.
type Stats struct {
	// Rows is the number of rows in the generated table.
	Rows int
	// Candidates is the number of candidate (partial or complete)
	// assignments tested against constraints.
	Candidates uint64
	// Pruned is the number of candidates rejected by a constraint.
	Pruned uint64
	// Steps is the number of column-extension steps (incremental only).
	Steps int
}

// Options tunes the solvers.
type Options struct {
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
	// MonolithicLimit caps the assignment-space size Monolithic will
	// enumerate; 0 means the default of 2^28.
	MonolithicLimit uint64
	// Tracer, when set, receives one span per solve carrying the Stats.
	Tracer obs.Tracer
	// Metrics, when set, accumulates coherdb_solver_candidates_total and
	// coherdb_solver_pruned_total counters labelled by controller.
	Metrics *obs.Registry
}

// observe reports a finished solve to the tracer span and metrics.
func (o Options) observe(span *obs.Span, controller string, stats Stats, err error) {
	span.SetAttr(
		obs.Int("steps", stats.Steps),
		obs.Uint64("candidates", stats.Candidates),
		obs.Uint64("pruned", stats.Pruned),
		obs.Int("rows", stats.Rows),
	)
	if err != nil {
		span.SetAttr(obs.String("error", err.Error()))
	}
	span.Finish()
	if o.Metrics == nil {
		return
	}
	o.Metrics.Help("coherdb_solver_candidates_total", "Candidate assignments tested against constraints.")
	o.Metrics.Counter("coherdb_solver_candidates_total", obs.L("controller", controller)).Add(int64(stats.Candidates))
	o.Metrics.Help("coherdb_solver_pruned_total", "Candidate assignments rejected by a constraint.")
	o.Metrics.Counter("coherdb_solver_pruned_total", obs.L("controller", controller)).Add(int64(stats.Pruned))
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) limit() uint64 {
	if o.MonolithicLimit > 0 {
		return o.MonolithicLimit
	}
	return 1 << 28
}

// Solve generates the controller table from the spec using the paper's
// incremental algorithm: starting from the empty relation, the column tables
// are cross-multiplied one at a time, and each column constraint is applied
// as soon as every column it references has been generated. Constraints
// prune partial assignments early, so the intermediate relations stay near
// the size of the final table.
func Solve(spec *Spec) (*rel.Table, Stats, error) {
	return SolveOpts(spec, Options{})
}

// SolveOpts is Solve with explicit options.
func SolveOpts(spec *Spec, opts Options) (_ *rel.Table, stats Stats, err error) {
	span := obs.StartSpan(opts.Tracer, "constraint.solve", obs.String("controller", spec.Name))
	defer func() { opts.observe(span, spec.Name, stats, err) }()
	ev := spec.evaluator()

	// Schedule: constraint for column c fires at the first step where all
	// referenced columns (and c itself) are available.
	type pending struct {
		col  string
		expr sqlmini.Expr
		refs map[string]struct{}
	}
	var waiting []pending
	for col, e := range spec.constraints {
		refs := sqlmini.Columns(e)
		refs[col] = struct{}{}
		waiting = append(waiting, pending{col: col, expr: e, refs: refs})
	}

	names := make([]string, 0, len(spec.cols))
	available := make(map[string]struct{}, len(spec.cols))

	// cur holds the partial table's rows.
	cur := [][]rel.Value{{}}

	for _, col := range spec.cols {
		stats.Steps++
		names = append(names, col.Name)
		available[col.Name] = struct{}{}

		// Constraints that become checkable at this step.
		var fire []sqlmini.Expr
		rest := waiting[:0]
		for _, p := range waiting {
			ready := true
			for r := range p.refs {
				if _, ok := available[r]; !ok {
					ready = false
					break
				}
			}
			if ready {
				fire = append(fire, p.expr)
			} else {
				rest = append(rest, p)
			}
		}
		waiting = rest

		domain := col.Domain()
		next, tested, err := extendParallel(cur, names, domain, fire, ev, opts.workers())
		if err != nil {
			return nil, stats, err
		}
		stats.Candidates += tested
		stats.Pruned += tested - uint64(len(next))
		cur = next
		if len(cur) == 0 {
			break // inconsistent constraints: empty table (paper §3)
		}
	}
	if len(waiting) > 0 && len(cur) > 0 {
		// Defensive: should be impossible since all columns were added.
		return nil, stats, fmt.Errorf("constraint: %d constraints never became checkable", len(waiting))
	}

	out, err := rel.NewTable(spec.Name, spec.ColumnNames()...)
	if err != nil {
		return nil, stats, err
	}
	for _, row := range cur {
		if len(row) != len(spec.cols) {
			// Solve aborted early on inconsistency; no rows to emit.
			break
		}
		if err := out.InsertRow(row); err != nil {
			return nil, stats, err
		}
	}
	stats.Rows = out.NumRows()
	return out, stats, nil
}

// extendParallel extends every row in cur with every value in domain,
// keeping extensions that satisfy all fire constraints. Work is split
// across workers by chunks of cur.
func extendParallel(cur [][]rel.Value, names []string, domain []rel.Value, fire []sqlmini.Expr, ev *sqlmini.Evaluator, workers int) ([][]rel.Value, uint64, error) {
	if len(cur) == 0 {
		return nil, 0, nil
	}
	if workers > len(cur) {
		workers = len(cur)
	}
	type result struct {
		rows   [][]rel.Value
		tested uint64
		err    error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(cur) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo > len(cur) {
			lo = len(cur)
		}
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := make(sqlmini.MapEnv, len(names))
			var res result
			for _, row := range cur[lo:hi] {
				for i, n := range names[:len(names)-1] {
					env[n] = row[i]
				}
				last := names[len(names)-1]
				for _, v := range domain {
					env[last] = v
					res.tested++
					ok := true
					for _, e := range fire {
						t, err := ev.True(e, env)
						if err != nil {
							res.err = err
							results[w] = res
							return
						}
						if !t {
							ok = false
							break
						}
					}
					if ok {
						nr := make([]rel.Value, len(row)+1)
						copy(nr, row)
						nr[len(row)] = v
						res.rows = append(res.rows, nr)
					}
				}
			}
			results[w] = res
		}(w, lo, hi)
	}
	wg.Wait()
	var out [][]rel.Value
	var tested uint64
	for _, r := range results {
		if r.err != nil {
			return nil, tested, r.err
		}
		out = append(out, r.rows...)
		tested += r.tested
	}
	return out, tested, nil
}

// Monolithic generates the controller table by enumerating the full cross
// product of the column tables and testing the complete conjunction of
// column constraints on each total assignment — no early pruning. This is
// the paper's slow baseline; its cost is the product of all domain sizes.
// It refuses to run when the space exceeds Options.MonolithicLimit.
func Monolithic(spec *Spec) (*rel.Table, Stats, error) {
	return MonolithicOpts(spec, Options{})
}

// MonolithicOpts is Monolithic with explicit options.
func MonolithicOpts(spec *Spec, opts Options) (_ *rel.Table, stats Stats, err error) {
	span := obs.StartSpan(opts.Tracer, "constraint.monolithic", obs.String("controller", spec.Name))
	defer func() { opts.observe(span, spec.Name, stats, err) }()
	space := spec.SpaceSize()
	if space > opts.limit() {
		return nil, stats, fmt.Errorf("%w: %d > %d", ErrSpaceLimit, space, opts.limit())
	}
	names := spec.ColumnNames()
	domains := make([][]rel.Value, len(spec.cols))
	for i, c := range spec.cols {
		domains[i] = c.Domain()
	}
	exprs := make([]sqlmini.Expr, 0, len(spec.constraints))
	for _, e := range spec.constraints {
		exprs = append(exprs, e)
	}
	ev := spec.evaluator()

	workers := opts.workers()
	if uint64(workers) > space {
		workers = int(space)
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		rows   [][]rel.Value
		tested uint64
		err    error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	per := space / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = space
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			env := make(sqlmini.MapEnv, len(names))
			row := make([]rel.Value, len(names))
			var res result
			for idx := lo; idx < hi; idx++ {
				// Decode idx as a mixed-radix number over domains.
				rem := idx
				for i := len(domains) - 1; i >= 0; i-- {
					d := domains[i]
					row[i] = d[rem%uint64(len(d))]
					rem /= uint64(len(d))
				}
				for i, n := range names {
					env[n] = row[i]
				}
				res.tested++
				ok := true
				for _, e := range exprs {
					t, err := ev.True(e, env)
					if err != nil {
						res.err = err
						results[w] = res
						return
					}
					if !t {
						ok = false
						break
					}
				}
				if ok {
					res.rows = append(res.rows, append([]rel.Value(nil), row...))
				}
			}
			results[w] = res
		}(w, lo, hi)
	}
	wg.Wait()
	out, err := rel.NewTable(spec.Name, names...)
	if err != nil {
		return nil, stats, err
	}
	for _, r := range results {
		if r.err != nil {
			return nil, stats, r.err
		}
		stats.Candidates += r.tested
		for _, row := range r.rows {
			if err := out.InsertRow(row); err != nil {
				return nil, stats, err
			}
		}
	}
	// Canonical order so Monolithic and Solve results compare equal.
	stats.Rows = out.NumRows()
	stats.Pruned = stats.Candidates - uint64(stats.Rows)
	return out, stats, nil
}

// GenerateInputs solves only the input columns of the spec: the table of
// all legal input combinations, which the paper generates first and then
// extends with output columns one at a time.
func GenerateInputs(spec *Spec) (*rel.Table, Stats, error) {
	sub := NewSpec(spec.Name + "_inputs")
	sub.funcs = spec.funcs
	inputs := make(map[string]struct{})
	for _, c := range spec.cols {
		if c.Kind != Input {
			continue
		}
		if err := sub.AddColumn(c); err != nil {
			return nil, Stats{}, err
		}
		inputs[c.Name] = struct{}{}
	}
	// Keep only constraints that mention input columns exclusively.
	for col, e := range spec.constraints {
		if _, ok := inputs[col]; !ok {
			continue
		}
		onlyInputs := true
		for ref := range sqlmini.Columns(e) {
			if _, ok := inputs[ref]; !ok {
				onlyInputs = false
				break
			}
		}
		if onlyInputs {
			sub.constraints[col] = e
		}
	}
	return Solve(sub)
}
