package constraint

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// Stats reports the work done by a solve.
type Stats struct {
	// Rows is the number of rows in the generated table.
	Rows int
	// Candidates is the number of candidate (partial or complete)
	// assignments tested against constraints.
	Candidates uint64
	// Pruned is the number of candidates rejected by a constraint.
	Pruned uint64
	// Steps is the number of column-extension steps (incremental only).
	Steps int
	// ReusedSteps is the number of leading steps served from an
	// IncrementalSolver's memo instead of being re-executed; always zero
	// for the one-shot solvers.
	ReusedSteps int
	// MemoHits is the number of candidates whose constraint verdict was
	// served by the projection memo instead of being evaluated: candidates
	// sharing a referenced-column projection with an earlier candidate at
	// the same step.
	MemoHits uint64
	// CompileTime is the one-off cost of lowering the column constraints
	// into position-bound closures before the solve loop.
	CompileTime time.Duration
	// StepStats holds one entry per column-extension step, in step order
	// (incremental solves only; Monolithic tests complete assignments and
	// has no steps).
	StepStats []StepStat
}

// StepStat describes one column-extension step of an incremental solve:
// which column was added, how hard the step's constraint sweep worked and
// what survived it.
type StepStat struct {
	// Column is the column the step appended.
	Column string
	// Domain is the size of the column's domain.
	Domain int
	// Rows is the partial table's row count after the step's constraints
	// pruned.
	Rows int
	// Candidates is the number of partial assignments the step tested;
	// MemoHits counts the verdicts served by the projection memo.
	Candidates, MemoHits uint64
	// Elapsed is the step's wall time, including domain interning.
	Elapsed time.Duration
}

// Options tunes the solvers.
type Options struct {
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
	// MonolithicLimit caps the assignment-space size Monolithic will
	// enumerate; 0 means the default of 2^28.
	MonolithicLimit uint64
	// Tracer, when set, receives one span per solve carrying the Stats.
	Tracer obs.Tracer
	// Metrics, when set, accumulates coherdb_solver_candidates_total and
	// coherdb_solver_pruned_total counters labelled by controller, plus
	// coherdb_solver_memo_hits_total and the
	// coherdb_solver_compile_duration_seconds histogram.
	Metrics *obs.Registry
}

// observe reports a finished solve to the tracer span and metrics.
func (o Options) observe(span *obs.Span, controller string, stats Stats, err error) {
	span.SetAttr(
		obs.Int("steps", stats.Steps),
		obs.Int("reused_steps", stats.ReusedSteps),
		obs.Uint64("candidates", stats.Candidates),
		obs.Uint64("pruned", stats.Pruned),
		obs.Uint64("memo_hits", stats.MemoHits),
		obs.Duration("compile_time", stats.CompileTime),
		obs.Int("rows", stats.Rows),
	)
	if err != nil {
		span.SetAttr(obs.String("error", err.Error()))
	}
	span.Finish()
	if o.Metrics == nil {
		return
	}
	o.Metrics.Help("coherdb_solver_candidates_total", "Candidate assignments tested against constraints.")
	o.Metrics.Counter("coherdb_solver_candidates_total", obs.L("controller", controller)).Add(int64(stats.Candidates))
	o.Metrics.Help("coherdb_solver_pruned_total", "Candidate assignments rejected by a constraint.")
	o.Metrics.Counter("coherdb_solver_pruned_total", obs.L("controller", controller)).Add(int64(stats.Pruned))
	o.Metrics.Help("coherdb_solver_memo_hits_total", "Candidate verdicts served by the projection memo instead of evaluation.")
	o.Metrics.Counter("coherdb_solver_memo_hits_total", obs.L("controller", controller)).Add(int64(stats.MemoHits))
	o.Metrics.Help("coherdb_solver_compile_duration_seconds", "Time lowering column constraints into compiled kernels, per solve.")
	o.Metrics.Histogram("coherdb_solver_compile_duration_seconds", nil, obs.L("controller", controller)).ObserveDuration(stats.CompileTime)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) limit() uint64 {
	if o.MonolithicLimit > 0 {
		return o.MonolithicLimit
	}
	return 1 << 28
}

// Solve generates the controller table from the spec using the paper's
// incremental algorithm: starting from the empty relation, the column tables
// are cross-multiplied one at a time, and each column constraint is applied
// as soon as every column it references has been generated. Constraints
// prune partial assignments early, so the intermediate relations stay near
// the size of the final table.
func Solve(spec *Spec) (*rel.Table, Stats, error) {
	return SolveOpts(spec, Options{})
}

// SolveOpts is Solve with explicit options.
func SolveOpts(spec *Spec, opts Options) (_ *rel.Table, stats Stats, err error) {
	span := obs.StartSpan(opts.Tracer, "constraint.solve", obs.String("controller", spec.Name))
	defer func() { opts.observe(span, spec.Name, stats, err) }()

	// Lower every column constraint once into a position-bound closure
	// tree (cached on the spec across solves). Rows during the solve are
	// prefixes of the full column order, so positions bound against the
	// full spec stay valid at every step: a constraint only fires once all
	// its referenced positions exist — exactly at the step its highest
	// referenced column is added.
	t0 := time.Now()
	cc, err := spec.compiledConstraints()
	stats.CompileTime = time.Since(t0)
	if err != nil {
		return nil, stats, err
	}
	fireAt := make([][]compiledConstraint, len(spec.cols))
	for _, c := range cc {
		fireAt[c.fire] = append(fireAt[c.fire], c)
	}

	workers := opts.workers()

	// cur holds the partial table's rows as dictionary-code rows; domains
	// are interned once per step and the whole solve runs on uint32
	// compares, emitting codes straight into the columnar result table.
	cur := [][]uint32{{}}

	for i, col := range spec.cols {
		stats.Steps++
		t0 := time.Now()
		stepSpan := span.Child("constraint.step", obs.String("column", col.Name))

		// Constraints that become checkable at this step, and the union of
		// the row positions they read.
		fire := fireAt[i]
		var fireRefs []int
		seenRef := make([]bool, i+1)
		for _, c := range fire {
			for _, pos := range c.refs {
				if !seenRef[pos] {
					seenRef[pos] = true
					fireRefs = append(fireRefs, pos)
				}
			}
		}

		domain := encodeDomain(col.Domain())
		next, est, err := extendCompiled(cur, i+1, domain, fire, fireRefs, workers)
		if err != nil {
			return nil, stats, err
		}
		stats.Candidates += est.tested
		stats.MemoHits += est.memoHits
		stats.Pruned += est.tested - uint64(len(next))
		cur = next
		stats.StepStats = append(stats.StepStats, StepStat{
			Column:     col.Name,
			Domain:     len(domain),
			Rows:       len(cur),
			Candidates: est.tested,
			MemoHits:   est.memoHits,
			Elapsed:    time.Since(t0),
		})
		stepSpan.SetAttr(
			obs.Int("domain", len(domain)),
			obs.Int("rows", len(cur)),
			obs.Uint64("candidates", est.tested),
			obs.Uint64("memo_hits", est.memoHits),
		)
		stepSpan.Finish()
		if len(cur) == 0 {
			break // inconsistent constraints: empty table (paper §3)
		}
	}

	out, err := rel.NewTable(spec.Name, spec.ColumnNames()...)
	if err != nil {
		return nil, stats, err
	}
	for _, row := range cur {
		if len(row) != len(spec.cols) {
			// Solve aborted early on inconsistency; no rows to emit.
			break
		}
		if err := out.AppendCodeRow(row); err != nil {
			return nil, stats, err
		}
	}
	stats.Rows = out.NumRows()
	return out, stats, nil
}

// encodeDomain interns a column table into the shared dictionary once, so
// the solve loop sweeps codes instead of values.
func encodeDomain(vals []rel.Value) []uint32 {
	d := rel.SharedDict()
	out := make([]uint32, len(vals))
	for i, v := range vals {
		out[i] = d.Code(v)
	}
	return out
}

// Monolithic generates the controller table by enumerating the full cross
// product of the column tables and testing the complete conjunction of
// column constraints on each total assignment — no early pruning. This is
// the paper's slow baseline; its cost is the product of all domain sizes.
// It refuses to run when the space exceeds Options.MonolithicLimit.
func Monolithic(spec *Spec) (*rel.Table, Stats, error) {
	return MonolithicOpts(spec, Options{})
}

// MonolithicOpts is Monolithic with explicit options.
func MonolithicOpts(spec *Spec, opts Options) (_ *rel.Table, stats Stats, err error) {
	span := obs.StartSpan(opts.Tracer, "constraint.monolithic", obs.String("controller", spec.Name))
	defer func() { opts.observe(span, spec.Name, stats, err) }()
	space := spec.SpaceSize()
	if space > opts.limit() {
		return nil, stats, fmt.Errorf("%w: %d > %d", ErrSpaceLimit, space, opts.limit())
	}
	names := spec.ColumnNames()
	domains := make([][]uint32, len(spec.cols))
	for i, c := range spec.cols {
		domains[i] = encodeDomain(c.Domain())
	}
	t0 := time.Now()
	cc, err := spec.compiledConstraints()
	stats.CompileTime = time.Since(t0)
	if err != nil {
		return nil, stats, err
	}

	// Work-stealing enumeration of the assignment space: an atomic cursor
	// deals index batches, so workers that land on quickly rejected
	// regions steal more instead of idling, and the split cannot drop
	// indexes however small the space is (the old static per-worker
	// division collapsed to empty ranges when space < workers).
	workers := opts.workers()
	cursor := newBatchCursor(space, workers)
	nb := cursor.numBatches()
	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}
	perBatch := make([][][]uint32, nb)
	tested := make([]uint64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var arena codeArena
			row := make([]uint32, len(names))
			// Per-worker program instances. Monolithic enumeration changes
			// many columns between candidates, so the sweep cache is
			// invalidated before every evaluation.
			insts := make([]*sqlmini.Instance, len(cc))
			for i, c := range cc {
				insts[i] = c.prog.Instance()
			}
			for {
				bi, lo, hi, ok := cursor.grab()
				if !ok {
					return
				}
				var out [][]uint32
				for idx := lo; idx < hi; idx++ {
					// Decode idx as a mixed-radix number over domains.
					rem := idx
					for i := len(domains) - 1; i >= 0; i-- {
						d := domains[i]
						row[i] = d[rem%uint64(len(d))]
						rem /= uint64(len(d))
					}
					tested[w]++
					ok := true
					for i, c := range cc {
						insts[i].NextRow()
						t, err := c.prog.EvalCodes(insts[i], row)
						if err != nil {
							errs[w] = err
							return
						}
						if !t {
							ok = false
							break
						}
					}
					if ok {
						nr := arena.row(len(names))
						copy(nr, row)
						out = append(out, nr)
					}
				}
				perBatch[bi] = out
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, stats, errs[w]
		}
		stats.Candidates += tested[w]
	}
	out, err := rel.NewTable(spec.Name, names...)
	if err != nil {
		return nil, stats, err
	}
	// Batches flatten in index order, so Monolithic and Solve results
	// compare equal row for row.
	if err := out.AppendCodes(flattenBatches(perBatch)); err != nil {
		return nil, stats, err
	}
	stats.Rows = out.NumRows()
	stats.Pruned = stats.Candidates - uint64(stats.Rows)
	return out, stats, nil
}

// InputSpec projects the spec onto its input columns: the sub-spec whose
// solution is the table of all legal input combinations. Constraints that
// mention any output column are dropped (they cannot fire over inputs
// alone). The sub-spec shares the parent's function table and inherits its
// mutation stamps, so rebuilding InputSpec from an unchanged parent yields
// a sub-spec an IncrementalSolver recognizes as identical.
func InputSpec(spec *Spec) (*Spec, error) {
	sub := NewSpec(spec.Name + "_inputs")
	sub.funcs = spec.funcs
	sub.funcGen = spec.funcGen
	sub.genCtr = spec.genCtr
	inputs := make(map[string]struct{})
	for _, c := range spec.cols {
		if c.Kind != Input {
			continue
		}
		if err := sub.AddColumn(c); err != nil {
			return nil, err
		}
		inputs[c.Name] = struct{}{}
	}
	// Keep only constraints that mention input columns exclusively.
	for col, e := range spec.constraints {
		if _, ok := inputs[col]; !ok {
			continue
		}
		onlyInputs := true
		for ref := range sqlmini.Columns(e) {
			if _, ok := inputs[ref]; !ok {
				onlyInputs = false
				break
			}
		}
		if onlyInputs {
			sub.constraints[col] = e
			sub.conGen[col] = spec.conGen[col]
		}
	}
	return sub, nil
}

// GenerateInputs solves only the input columns of the spec: the table of
// all legal input combinations, which the paper generates first and then
// extends with output columns one at a time.
func GenerateInputs(spec *Spec) (*rel.Table, Stats, error) {
	sub, err := InputSpec(spec)
	if err != nil {
		return nil, Stats{}, err
	}
	return Solve(sub)
}
