package deadlock

import (
	"fmt"
	"strings"

	"coherdb/internal/rel"
)

// VAssign is one channel assignment occurrence in a dependency: message,
// source, destination and the channel it rides.
type VAssign struct {
	M, S, D, VC string
}

func (a VAssign) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s)", a.M, a.S, a.D, a.VC)
}

// DepRow is one row of a (controller / pairwise / protocol) dependency
// table: processing the input assignment requires the output assignment's
// channel — the input channel depends on the output channel (§4.1).
type DepRow struct {
	In, Out VAssign
	// Origin records provenance: "D", "M", ... for controller rows;
	// "T1*T2@placement" for composed rows.
	Origin string
}

func (d DepRow) String() string {
	return fmt.Sprintf("%s -> %s [%s]", d.In, d.Out, d.Origin)
}

// depCols is the 8-column schema of dependency tables (§4.1: "This table
// has 8 columns representing the input assignment followed by the output
// assignment").
var depCols = []string{"m1", "s1", "d1", "vc1", "m2", "s2", "d2", "vc2"}

// DepTable materializes dependency rows as a relation (plus an origin
// column for diagnostics).
func DepTable(name string, rows []DepRow) *rel.Table {
	t := rel.MustNewTable(name, append(append([]string{}, depCols...), "origin")...)
	for _, r := range rows {
		t.MustInsert(
			rel.S(r.In.M), rel.S(r.In.S), rel.S(r.In.D), rel.S(r.In.VC),
			rel.S(r.Out.M), rel.S(r.Out.S), rel.S(r.Out.D), rel.S(r.Out.VC),
			rel.S(r.Origin),
		)
	}
	return t
}

// msgGroups discovers the message column groups of a controller table by
// the src/dest convention: a column g is a message group iff columns
// g+"src" and g+"dest" exist. The input group is "inmsg"; all others are
// output groups.
func msgGroups(t *rel.Table) (in string, outs []string, err error) {
	for _, c := range t.Columns() {
		if strings.HasSuffix(c, "src") || strings.HasSuffix(c, "dest") || strings.HasSuffix(c, "rsrc") {
			continue
		}
		if t.HasColumn(c+"src") && t.HasColumn(c+"dest") {
			if c == "inmsg" {
				in = c
			} else {
				outs = append(outs, c)
			}
		}
	}
	if in == "" {
		return "", nil, fmt.Errorf("%w: table %q has no inmsg group", ErrBadController, t.Name())
	}
	if len(outs) == 0 {
		return "", nil, fmt.Errorf("%w: table %q has no output message groups", ErrBadController, t.Name())
	}
	return in, outs, nil
}

// ControllerDeps builds the individual controller dependency table of one
// controller (§4.1): for every row and every non-NULL outgoing message, if
// both the incoming and outgoing (message, source, destination) triples are
// assigned channels in V, a dependency row is produced. One entry is added
// per outgoing message.
func ControllerDeps(t *rel.Table, v *Assignment) ([]DepRow, error) {
	in, outs, err := msgGroups(t)
	if err != nil {
		return nil, err
	}
	var rows []DepRow
	for i := 0; i < t.NumRows(); i++ {
		im := t.Get(i, in)
		if im.IsNull() {
			continue
		}
		inA := VAssign{M: im.Str(), S: t.Get(i, in+"src").Str(), D: t.Get(i, in+"dest").Str()}
		inA.VC = v.Channel(inA.M, inA.S, inA.D)
		if inA.VC == "" {
			continue // input not on a tracked channel
		}
		for _, g := range outs {
			om := t.Get(i, g)
			if om.IsNull() {
				continue
			}
			outA := VAssign{M: om.Str(), S: t.Get(i, g+"src").Str(), D: t.Get(i, g+"dest").Str()}
			outA.VC = v.Channel(outA.M, outA.S, outA.D)
			if outA.VC == "" {
				continue // output over a dedicated/internal path
			}
			rows = append(rows, DepRow{In: inA, Out: outA, Origin: t.Name()})
		}
	}
	return rows, nil
}

// applyPlacement substitutes quad-placement role identifications in a
// dependency row. Channels are kept: co-located roles share the physical
// link, which is exactly what makes the dependency arise (§4.1).
func applyPlacement(r DepRow, p Placement) DepRow {
	r.In.S, r.In.D = p.Apply(r.In.S), p.Apply(r.In.D)
	r.Out.S, r.Out.D = p.Apply(r.Out.S), p.Apply(r.Out.D)
	if p.Name != "L!=H!=R" {
		r.Origin = r.Origin + "@" + p.Name
	}
	return r
}

// composeKeyExact keys an assignment on (m, s, d, v) for the exact
// composition requirement.
func composeKeyExact(a VAssign) string {
	return a.M + "\x1f" + a.S + "\x1f" + a.D + "\x1f" + a.VC
}

// composeKeyRelaxed keys an assignment on (s, d, v), ignoring the message —
// the §4.1 relaxation that captures transaction interleavings: two
// different transactions' messages meeting on the same channel between the
// same endpoints.
func composeKeyRelaxed(a VAssign) string {
	return a.S + "\x1f" + a.D + "\x1f" + a.VC
}

// Compose builds the pairwise dependency table of t1 and t2 (§4.1): for
// rows R=(R1,R2) in t1 and S=(S3,S4) in t2, if R2 matches S3 the row
// (R1,S4) is added; by symmetry S composed with R adds (S3,R2) when S4
// matches R1. With relaxed true the match ignores messages.
func Compose(t1, t2 []DepRow, relaxed bool) []DepRow {
	key := composeKeyExact
	if relaxed {
		key = composeKeyRelaxed
	}
	// Index t2 rows by input key.
	byIn := make(map[string][]int, len(t2))
	for j, s := range t2 {
		byIn[key(s.In)] = append(byIn[key(s.In)], j)
	}
	var out []DepRow
	for _, r := range t1 {
		for _, j := range byIn[key(r.Out)] {
			s := t2[j]
			out = append(out, DepRow{
				In:     r.In,
				Out:    s.Out,
				Origin: r.Origin + "*" + s.Origin,
			})
		}
	}
	return out
}

// dedupe removes duplicate dependency rows (same assignments, any origin),
// keeping the first occurrence.
func dedupe(rows []DepRow) []DepRow {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := composeKeyExact(r.In) + "\x1e" + composeKeyExact(r.Out)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}
