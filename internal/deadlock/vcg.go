package deadlock

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one arc of the virtual channel dependency graph: From depends on
// To (§4.1: "a directed edge (vc1, vc2) means that the virtual channel vc1
// depends on the virtual channel vc2").
type Edge struct {
	From, To string
}

func (e Edge) String() string { return e.From + " -> " + e.To }

// VCG is the virtual channel dependency graph, with the dependency rows
// supporting each edge retained as evidence.
type VCG struct {
	nodes    []string
	adj      map[string][]string
	evidence map[Edge][]DepRow
}

// NewVCG builds the graph from protocol dependency rows.
func NewVCG(rows []DepRow) *VCG {
	g := &VCG{adj: make(map[string][]string), evidence: make(map[Edge][]DepRow)}
	nodeSet := map[string]bool{}
	for _, r := range rows {
		e := Edge{From: r.In.VC, To: r.Out.VC}
		if _, have := g.evidence[e]; !have {
			g.adj[e.From] = append(g.adj[e.From], e.To)
		}
		g.evidence[e] = append(g.evidence[e], r)
		nodeSet[e.From] = true
		nodeSet[e.To] = true
	}
	for n := range nodeSet {
		g.nodes = append(g.nodes, n)
	}
	sort.Strings(g.nodes)
	for n := range g.adj {
		sort.Strings(g.adj[n])
	}
	return g
}

// Nodes returns the channels, sorted.
func (g *VCG) Nodes() []string { return append([]string(nil), g.nodes...) }

// Edges returns the distinct edges, sorted.
func (g *VCG) Edges() []Edge {
	var out []Edge
	for from, tos := range g.adj {
		for _, to := range tos {
			out = append(out, Edge{From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Evidence returns the dependency rows supporting an edge.
func (g *VCG) Evidence(e Edge) []DepRow { return g.evidence[e] }

// Cycle is one elementary cycle, as the sequence of channels visited (the
// first channel is repeated implicitly).
type Cycle []string

func (c Cycle) String() string {
	return strings.Join(append(append([]string{}, c...), c[0]), " -> ")
}

// Cycles enumerates the elementary cycles of the graph (Johnson-style DFS;
// the graph has at most a handful of channels, so simplicity wins). Cycles
// are canonicalized to start at their smallest channel and deduplicated.
func (g *VCG) Cycles() []Cycle {
	var cycles []Cycle
	seen := map[string]bool{}
	var stack []string
	onStack := map[string]bool{}

	var dfs func(start, u string)
	dfs = func(start, u string) {
		stack = append(stack, u)
		onStack[u] = true
		for _, w := range g.adj[u] {
			if w == start {
				// Found a cycle back to the start.
				c := canonical(append([]string(nil), stack...))
				k := strings.Join(c, "\x1f")
				if !seen[k] {
					seen[k] = true
					cycles = append(cycles, c)
				}
				continue
			}
			// Only explore nodes >= start to avoid re-finding cycles
			// rooted at smaller nodes.
			if w < start || onStack[w] {
				continue
			}
			dfs(start, w)
		}
		stack = stack[:len(stack)-1]
		onStack[u] = false
	}
	for _, n := range g.nodes {
		dfs(n, n)
	}
	sort.Slice(cycles, func(i, j int) bool {
		if len(cycles[i]) != len(cycles[j]) {
			return len(cycles[i]) < len(cycles[j])
		}
		return strings.Join(cycles[i], ",") < strings.Join(cycles[j], ",")
	})
	return cycles
}

// canonical rotates a cycle so it starts at its smallest element.
func canonical(c []string) Cycle {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	return append(append(Cycle{}, c[min:]...), c[:min]...)
}

// Acyclic reports whether the graph has no cycles — the §4.1 deadlock
// freedom condition.
func (g *VCG) Acyclic() bool {
	// Kahn's algorithm; cheaper than enumerating cycles.
	indeg := map[string]int{}
	for _, n := range g.nodes {
		indeg[n] = 0
	}
	for _, tos := range g.adj {
		for _, to := range tos {
			indeg[to]++
		}
	}
	queue := make([]string, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	removed := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		removed++
		for _, to := range g.adj[n] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	return removed == len(g.nodes)
}

// CycleEvidence returns, for each consecutive edge of the cycle, one
// supporting dependency row.
func (g *VCG) CycleEvidence(c Cycle) []DepRow {
	out := make([]DepRow, 0, len(c))
	for i := range c {
		e := Edge{From: c[i], To: c[(i+1)%len(c)]}
		rows := g.evidence[e]
		if len(rows) > 0 {
			out = append(out, rows[0])
		}
	}
	return out
}

// Describe renders a human-readable account of the graph and its cycles.
func (g *VCG) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "VCG: %d channels, %d edges\n", len(g.nodes), len(g.Edges()))
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %s  (%d dependencies)\n", e, len(g.evidence[e]))
	}
	cycles := g.Cycles()
	if len(cycles) == 0 {
		sb.WriteString("no cycles: deadlock free\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d cycle(s):\n", len(cycles))
	for _, c := range cycles {
		fmt.Fprintf(&sb, "  %s\n", c)
		for _, ev := range g.CycleEvidence(c) {
			fmt.Fprintf(&sb, "    via %s\n", ev)
		}
	}
	return sb.String()
}
