package deadlock

import (
	"testing"

	"coherdb/internal/protocol"
)

func TestRepairConvergesFromVC4(t *testing.T) {
	// The automated §4.2 loop must fix the assignment that defeated the
	// hand-tuned VC4 variant.
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	res, err := Repair(tables, v, DefaultOptions(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; %d actions, %d cycles left:\n%s",
			len(res.Actions), len(res.Report.Cycles), res.Report.Graph.Describe())
	}
	if len(res.Actions) == 0 {
		t.Fatal("vc4 needs repair but no action taken")
	}
	t.Logf("converged after %d action(s):", len(res.Actions))
	for _, a := range res.Actions {
		t.Logf("  %s", a)
	}
	// The repaired assignment really is clean.
	rep, err := Analyze(tables, res.Final, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadlocked() {
		t.Fatal("final assignment re-analyzes as deadlocked")
	}
}

func TestRepairConvergesFromInitial(t *testing.T) {
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignInitial)
	res, err := Repair(tables, v, DefaultOptions(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge from the initial assignment after %d actions", len(res.Actions))
	}
	t.Logf("initial4 repaired in %d action(s)", len(res.Actions))
}

func TestRepairNoOpOnCleanAssignment(t *testing.T) {
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignFixed)
	res, err := Repair(tables, v, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Actions) != 0 {
		t.Fatalf("clean assignment modified: %v", res.Actions)
	}
}

func TestRepairActionRendering(t *testing.T) {
	move := RepairAction{Kind: "move", M: "mread", S: "home", D: "home", NewVC: "VCR1", Cycles: 3}
	ded := RepairAction{Kind: "dedicate", M: "mread", S: "home", D: "home", Cycles: 1}
	if move.String() == "" || ded.String() == "" {
		t.Fatal("empty renderings")
	}
	if move.String() == ded.String() {
		t.Fatal("kinds indistinguishable")
	}
}
