package deadlock

import (
	"testing"

	"coherdb/internal/delta"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// catalogOf adapts a table list to the delta.Catalog interface so the
// tests can drive a Tracker over exactly the analysis inputs.
type catalogOf map[string]*rel.Table

func (c catalogOf) Names() []string {
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	return out
}

func (c catalogOf) Table(name string) (*rel.Table, bool) {
	t, ok := c[name]
	return t, ok
}

func TestAnalyzeDeltaReuse(t *testing.T) {
	// Clone the shared fixture: this test mutates a controller table.
	tables := make([]*rel.Table, 0, 8)
	for _, tab := range controllerTables(t) {
		tables = append(tables, tab.Clone())
	}
	v := assignment(t, protocol.AssignVC4)
	cat := catalogOf{v.Name(): v}
	for _, tab := range tables {
		cat[tab.Name()] = tab
	}
	tr := delta.NewTracker()
	tr.Capture(cat)

	prev, err := Analyze(tables, v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// No edits: the previous report comes back untouched.
	d := tr.DiffAndCapture(cat)
	rep, reused, err := AnalyzeDelta(tables, v, prev, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reused || rep != prev {
		t.Fatalf("clean revision: reused=%v rep==prev=%v", reused, rep == prev)
	}

	// Nil delta or nil prev must run the full analysis.
	if _, reused, err := AnalyzeDelta(tables, v, prev, nil, DefaultOptions()); err != nil || reused {
		t.Fatalf("nil delta: reused=%v err=%v", reused, err)
	}
	if _, reused, err := AnalyzeDelta(tables, v, nil, d, DefaultOptions()); err != nil || reused {
		t.Fatalf("nil prev: reused=%v err=%v", reused, err)
	}

	// Editing a controller dirties the analysis: duplicate its first row.
	tab := tables[0]
	row := make([]uint32, tab.NumCols())
	for j := range row {
		row[j] = tab.CodeAt(0, j)
	}
	if err := tab.AppendCodeRow(row); err != nil {
		t.Fatal(err)
	}
	d = tr.DiffAndCapture(cat)
	rep2, reused, err := AnalyzeDelta(tables, v, prev, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if reused || rep2 == prev {
		t.Fatal("controller edit: expected a fresh analysis")
	}
}
