package deadlock

import (
	"fmt"
	"sort"

	"coherdb/internal/rel"
)

// Repair automates the §4.2 loop: "The cycles that lead to deadlocks are
// resolved by modifying V and/or by adding more virtual channels. The
// process is repeated until no deadlocks are found."
//
// Each iteration analyzes the current assignment and, if cycles remain,
// picks the hop (message, source, destination) that participates in the
// most cycle edges and either moves it onto a fresh virtual channel or —
// if moving it has been tried before — dedicates it (removes it from V,
// modeling a dedicated hardware path, the fix the paper ultimately needed
// for the directory->memory requests). Dedication strictly removes
// dependencies, so the loop terminates.

// RepairAction records one modification of V.
type RepairAction struct {
	// Kind is "move" or "dedicate".
	Kind string
	// M, S, D identify the reassigned hop.
	M, S, D string
	// NewVC is the fresh channel for a move.
	NewVC string
	// Cycles is the cycle count before this action.
	Cycles int
}

func (a RepairAction) String() string {
	if a.Kind == "move" {
		return fmt.Sprintf("move (%s, %s, %s) to %s [%d cycles]", a.M, a.S, a.D, a.NewVC, a.Cycles)
	}
	return fmt.Sprintf("dedicate (%s, %s, %s) [%d cycles]", a.M, a.S, a.D, a.Cycles)
}

// RepairResult is the outcome of a repair run.
type RepairResult struct {
	// Final is the repaired assignment table.
	Final *rel.Table
	// Actions lists the modifications in order.
	Actions []RepairAction
	// Report is the analysis of the final assignment.
	Report *Report
	// Converged reports whether the final assignment is cycle free.
	Converged bool
}

// Repair runs the loop for at most maxIter iterations. The input V is not
// modified.
func Repair(controllers []*rel.Table, v *rel.Table, opts Options, maxIter int) (*RepairResult, error) {
	if maxIter <= 0 {
		maxIter = 32
	}
	cur := v.Clone().SetName("V")
	res := &RepairResult{}
	moved := map[VKey]bool{}
	freshID := 0

	for iter := 0; iter < maxIter; iter++ {
		rep, err := Analyze(controllers, cur, opts)
		if err != nil {
			return nil, err
		}
		res.Report = rep
		res.Final = cur
		if !rep.Deadlocked() {
			res.Converged = true
			return res, nil
		}
		hop, ok := worstHop(rep, moved)
		if !ok {
			// Every hop on every cycle has already been dedicated away;
			// should be impossible, but terminate defensively.
			return res, nil
		}
		act := RepairAction{M: hop.M, S: hop.S, D: hop.D, Cycles: len(rep.Cycles)}
		if moved[hop] {
			act.Kind = "dedicate"
			cur = cur.Select(func(r rel.Row) bool {
				return !(r.Get("m").Equal(rel.S(hop.M)) &&
					r.Get("s").Equal(rel.S(hop.S)) &&
					r.Get("d").Equal(rel.S(hop.D)))
			}).SetName("V")
		} else {
			act.Kind = "move"
			freshID++
			act.NewVC = fmt.Sprintf("VCR%d", freshID)
			moved[hop] = true
			next := cur.Clone()
			for i := 0; i < next.NumRows(); i++ {
				if next.Get(i, "m").Equal(rel.S(hop.M)) &&
					next.Get(i, "s").Equal(rel.S(hop.S)) &&
					next.Get(i, "d").Equal(rel.S(hop.D)) {
					if err := next.Set(i, "v", rel.S(act.NewVC)); err != nil {
						return nil, err
					}
				}
			}
			cur = next
		}
		res.Actions = append(res.Actions, act)
	}
	// Out of budget: return the last analysis.
	rep, err := Analyze(controllers, cur, opts)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.Final = cur
	res.Converged = !rep.Deadlocked()
	return res, nil
}

// worstHop picks the (m, s, d) hop participating in the most cycle-edge
// evidence rows, preferring hops not yet moved. Output hops are counted:
// moving the *awaited* channel is what breaks a wait.
func worstHop(rep *Report, moved map[VKey]bool) (VKey, bool) {
	counts := map[VKey]int{}
	for _, c := range rep.Cycles {
		for i := range c {
			e := Edge{From: c[i], To: c[(i+1)%len(c)]}
			for _, row := range rep.Graph.Evidence(e) {
				counts[VKey{M: row.Out.M, S: row.Out.S, D: row.Out.D}]++
			}
		}
	}
	type cand struct {
		k VKey
		n int
	}
	var cands []cand
	for k, n := range counts {
		cands = append(cands, cand{k, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		a, b := cands[i].k, cands[j].k
		if a.M != b.M {
			return a.M < b.M
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.D < b.D
	})
	// Prefer an unmoved hop; otherwise the most-counted moved one
	// (which will be dedicated).
	for _, c := range cands {
		if !moved[c.k] {
			return c.k, true
		}
	}
	if len(cands) > 0 {
		return cands[0].k, true
	}
	return VKey{}, false
}
