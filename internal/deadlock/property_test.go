package deadlock

import (
	"math/rand"
	"testing"
)

// randDepRows generates a small random dependency table over a handful of
// messages, roles and channels.
func randDepRows(rng *rand.Rand, n int) []DepRow {
	msgs := []string{"m1", "m2", "m3"}
	roles := []string{"local", "home", "remote"}
	vcs := []string{"VC0", "VC1", "VC2"}
	pick := func(s []string) string { return s[rng.Intn(len(s))] }
	out := make([]DepRow, n)
	for i := range out {
		out[i] = DepRow{
			In:     VAssign{M: pick(msgs), S: pick(roles), D: pick(roles), VC: pick(vcs)},
			Out:    VAssign{M: pick(msgs), S: pick(roles), D: pick(roles), VC: pick(vcs)},
			Origin: "t",
		}
	}
	return out
}

// Property: relaxed composition finds a superset of exact composition.
func TestQuickRelaxedSupersetOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		a := randDepRows(rng, 1+rng.Intn(10))
		b := randDepRows(rng, 1+rng.Intn(10))
		exact := Compose(a, b, false)
		relaxed := Compose(a, b, true)
		if len(relaxed) < len(exact) {
			t.Fatalf("trial %d: relaxed %d < exact %d", trial, len(relaxed), len(exact))
		}
		// Every exact composition appears among the relaxed ones.
		have := map[string]bool{}
		for _, r := range relaxed {
			have[r.In.String()+r.Out.String()] = true
		}
		for _, r := range exact {
			if !have[r.In.String()+r.Out.String()] {
				t.Fatalf("trial %d: exact row %s lost under relaxation", trial, r)
			}
		}
	}
}

// Property: composition output rows pair an input of the first table with
// an output of the second (never invent assignments).
func TestQuickComposeProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		a := randDepRows(rng, 1+rng.Intn(8))
		b := randDepRows(rng, 1+rng.Intn(8))
		ins := map[VAssign]bool{}
		for _, r := range a {
			ins[r.In] = true
		}
		outs := map[VAssign]bool{}
		for _, r := range b {
			outs[r.Out] = true
		}
		for _, r := range Compose(a, b, true) {
			if !ins[r.In] || !outs[r.Out] {
				t.Fatalf("trial %d: composed row %s not grounded in inputs", trial, r)
			}
		}
	}
}

// Property: applying a placement never changes channels, only roles.
func TestQuickPlacementPreservesChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		rows := randDepRows(rng, 1+rng.Intn(10))
		for _, p := range Placements() {
			for _, r := range rows {
				m := applyPlacement(r, p)
				if m.In.VC != r.In.VC || m.Out.VC != r.Out.VC {
					t.Fatalf("placement %s changed a channel", p.Name)
				}
				if m.In.M != r.In.M || m.Out.M != r.Out.M {
					t.Fatalf("placement %s changed a message", p.Name)
				}
			}
		}
	}
}

// Property: dedupe is idempotent and order-preserving for first occurrences.
func TestQuickDedupeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 100; trial++ {
		rows := randDepRows(rng, rng.Intn(20))
		d1 := dedupe(rows)
		d2 := dedupe(d1)
		if len(d1) != len(d2) {
			t.Fatalf("trial %d: dedupe not idempotent", trial)
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("trial %d: dedupe reordered", trial)
			}
		}
	}
}

// Property: the VCG edge set is exactly the distinct (vc1, vc2) pairs.
func TestQuickVCGEdgesMatchRows(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 50; trial++ {
		rows := randDepRows(rng, 1+rng.Intn(30))
		g := NewVCG(rows)
		want := map[Edge]bool{}
		for _, r := range rows {
			want[Edge{From: r.In.VC, To: r.Out.VC}] = true
		}
		got := g.Edges()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("trial %d: phantom edge %s", trial, e)
			}
			if len(g.Evidence(e)) == 0 {
				t.Fatalf("trial %d: edge %s has no evidence", trial, e)
			}
		}
	}
}
