package deadlock

import (
	"fmt"
	"strings"

	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// This file is the literal-SQL implementation of §4.1, mirroring how the
// paper ran the analysis inside the relational database system: the
// controller tables and V live in a database; the individual controller
// dependency tables are CREATE TABLE ... AS SELECT joins against V; the
// quad placements are SELECT projections substituting role names; the
// pairwise composition is a self-join on the channel-assignment columns;
// and the VCG is the projection of the final dependency table onto
// (vc1, vc2). AnalyzeSQL produces the same graph as Analyze (the Go
// implementation), which the tests cross-check.

// AnalyzeSQL runs the §4.1 method with SQL statements over db-installed
// copies of the controller tables and assignment. Only the default
// (relaxed, all placements, no closure) configuration is supported — the
// paper's final method.
func AnalyzeSQL(controllers []*rel.Table, v *rel.Table, db *sqlmini.DB) (*Report, error) {
	if db == nil {
		db = sqlmini.NewDB()
	}
	if _, err := NewAssignment(v); err != nil {
		return nil, err
	}
	// PutTable replaces in place; same-schema replacement keeps the DB's
	// cached query plans valid across repeated analyses.
	db.PutTable(v.Clone().SetName("V"))

	// 1. Individual controller dependency tables, one SELECT per output
	// message group, unioned (§4.1: "One entry is added for each outgoing
	// message").
	var depTables []string
	for _, t := range controllers {
		in, outs, err := msgGroups(t)
		if err != nil {
			return nil, err
		}
		db.PutTable(t)
		name := t.Name() + "_deps"
		var branches []string
		for _, g := range outs {
			branches = append(branches, fmt.Sprintf(
				`SELECT t.%[2]s AS m1, t.%[2]ssrc AS s1, t.%[2]sdest AS d1, vin.v AS vc1,
				        t.%[3]s AS m2, t.%[3]ssrc AS s2, t.%[3]sdest AS d2, vout.v AS vc2
				 FROM %[1]s t
				 JOIN V vin  ON t.%[2]s = vin.m  AND t.%[2]ssrc = vin.s  AND t.%[2]sdest = vin.d
				 JOIN V vout ON t.%[3]s = vout.m AND t.%[3]ssrc = vout.s AND t.%[3]sdest = vout.d`,
				t.Name(), in, g))
		}
		stmt := "CREATE TABLE " + name + " AS " + strings.Join(branches, " UNION ")
		db.DropTable(name)
		if _, err := db.Exec(stmt); err != nil {
			return nil, fmt.Errorf("deadlock: SQL deps for %s: %w", t.Name(), err)
		}
		depTables = append(depTables, name)
	}

	// 2. The five quad-placement sets, as CASE-projection SELECTs over the
	// union of the individual tables.
	var union []string
	for _, n := range depTables {
		union = append(union, "SELECT m1, s1, d1, vc1, m2, s2, d2, vc2 FROM "+n)
	}
	db.DropTable("alldeps")
	if _, err := db.Exec("CREATE TABLE alldeps AS " + strings.Join(union, " UNION ")); err != nil {
		return nil, err
	}
	var placed []string
	for i, p := range Placements() {
		name := fmt.Sprintf("deps_p%d", i)
		subst := func(col string) string {
			if len(p.Subst) == 0 {
				return col
			}
			expr := "CASE "
			for from, to := range p.Subst {
				expr += fmt.Sprintf("WHEN %s = '%s' THEN '%s' ", col, from, to)
			}
			return expr + "ELSE " + col + " END AS " + col
		}
		stmt := fmt.Sprintf(
			"CREATE TABLE %s AS SELECT DISTINCT m1, %s, %s, vc1, m2, %s, %s, vc2 FROM alldeps",
			name, subst("s1"), subst("d1"), subst("s2"), subst("d2"))
		db.DropTable(name)
		if _, err := db.Exec(stmt); err != nil {
			return nil, fmt.Errorf("deadlock: SQL placement %s: %w", p.Name, err)
		}
		placed = append(placed, name)
	}

	// 3. Pairwise composition within each placement set: a self-join on
	// the (source, destination, channel) of the output/input assignments —
	// the message-agnostic relaxation of §4.1.
	var protoBranches []string
	for _, name := range placed {
		protoBranches = append(protoBranches,
			"SELECT m1, s1, d1, vc1, m2, s2, d2, vc2 FROM "+name)
		comp := name + "_pairs"
		stmt := fmt.Sprintf(
			`CREATE TABLE %[1]s AS SELECT DISTINCT
				a.m1 AS m1, a.s1 AS s1, a.d1 AS d1, a.vc1 AS vc1,
				b.m2 AS m2, b.s2 AS s2, b.d2 AS d2, b.vc2 AS vc2
			 FROM %[2]s a JOIN %[2]s b
			 ON a.s2 = b.s1 AND a.d2 = b.d1 AND a.vc2 = b.vc1`, comp, name)
		db.DropTable(comp)
		if _, err := db.Exec(stmt); err != nil {
			return nil, fmt.Errorf("deadlock: SQL composition for %s: %w", name, err)
		}
		protoBranches = append(protoBranches,
			"SELECT m1, s1, d1, vc1, m2, s2, d2, vc2 FROM "+comp)
	}
	db.DropTable("protocol_deps")
	if _, err := db.Exec("CREATE TABLE protocol_deps AS " + strings.Join(protoBranches, " UNION ")); err != nil {
		return nil, err
	}

	// 4. VCG = the (vc1, vc2) projection; cycles via the Go graph code
	// (Oracle's CONNECT BY equivalent is out of dialect scope).
	proto := db.MustTable("protocol_deps")
	rows := make([]DepRow, 0, proto.NumRows())
	for i := 0; i < proto.NumRows(); i++ {
		rows = append(rows, DepRow{
			In: VAssign{
				M: proto.Get(i, "m1").Str(), S: proto.Get(i, "s1").Str(),
				D: proto.Get(i, "d1").Str(), VC: proto.Get(i, "vc1").Str(),
			},
			Out: VAssign{
				M: proto.Get(i, "m2").Str(), S: proto.Get(i, "s2").Str(),
				D: proto.Get(i, "d2").Str(), VC: proto.Get(i, "vc2").Str(),
			},
			Origin: "sql",
		})
	}
	g := NewVCG(rows)
	return &Report{
		Graph:    g,
		Cycles:   g.Cycles(),
		Protocol: rows,
		Stats:    Stats{ProtocolRows: len(rows), Rounds: 1},
	}, nil
}
