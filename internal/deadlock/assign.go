// Package deadlock implements the paper's §4.1 SQL-based deadlock
// detection: given the controller tables and a virtual channel assignment V,
// it builds per-controller channel dependency tables, composes them
// pairwise under the five quad-placement relations (with the
// message-agnostic relaxation for transaction interleavings), forms the
// protocol dependency table — the virtual channel dependency graph VCG in
// tabular form — and reports its cycles. An absence of cycles establishes
// absence of channel-resource deadlocks [Dally-Seitz].
package deadlock

import (
	"errors"
	"fmt"

	"coherdb/internal/rel"
)

// Errors returned by the analyzer.
var (
	ErrBadAssignment = errors.New("deadlock: malformed channel assignment table")
	ErrBadController = errors.New("deadlock: malformed controller table")
)

// VKey identifies one channel assignment: message, source role,
// destination role.
type VKey struct {
	M, S, D string
}

// Assignment is the channel assignment V (§4.1): "a database table with 4
// columns — m, s, d, v — where m is a message from source s to destination
// d and is sent over virtual channel v". Messages without an assignment
// travel over dedicated or node-internal paths and induce no dependencies.
type Assignment struct {
	tab *rel.Table
	idx map[VKey]string
}

// NewAssignment wraps a V table (columns m, s, d, v).
func NewAssignment(v *rel.Table) (*Assignment, error) {
	for _, c := range []string{"m", "s", "d", "v"} {
		if !v.HasColumn(c) {
			return nil, fmt.Errorf("%w: missing column %q", ErrBadAssignment, c)
		}
	}
	a := &Assignment{tab: v, idx: make(map[VKey]string, v.NumRows())}
	for i := 0; i < v.NumRows(); i++ {
		k := VKey{M: v.Get(i, "m").Str(), S: v.Get(i, "s").Str(), D: v.Get(i, "d").Str()}
		if k.M == "" || k.S == "" || k.D == "" || v.Get(i, "v").IsNull() {
			return nil, fmt.Errorf("%w: row %d has empty fields", ErrBadAssignment, i)
		}
		if prev, dup := a.idx[k]; dup && prev != v.Get(i, "v").Str() {
			return nil, fmt.Errorf("%w: %v assigned to both %s and %s", ErrBadAssignment, k, prev, v.Get(i, "v").Str())
		}
		a.idx[k] = v.Get(i, "v").Str()
	}
	return a, nil
}

// Channel returns the channel assigned to (m, s, d), or "" if the hop is
// not a tracked channel resource.
func (a *Assignment) Channel(m, s, d string) string {
	return a.idx[VKey{M: m, S: s, D: d}]
}

// Channels returns the distinct channel names, sorted.
func (a *Assignment) Channels() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range a.idx {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortStrings(out)
	return out
}

// Table returns the underlying V table.
func (a *Assignment) Table() *rel.Table { return a.tab }

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Placement is one of the five quad-placement relations of §4.1: a
// substitution over the node roles induced by which of local (L), home (H)
// and remote (R) share a quad. Substitution is applied to the role fields
// of dependency assignments after channels are assigned: co-located roles
// share physical channels, so their names are identified.
type Placement struct {
	Name  string
	Subst map[string]string
}

// Apply substitutes a role.
func (p Placement) Apply(role string) string {
	if r, ok := p.Subst[role]; ok {
		return r
	}
	return role
}

// Placements returns the five quad-placement relations: L≠H≠R (identity),
// L=H≠R, L≠H=R, L=R≠H and L=H=R.
func Placements() []Placement {
	return []Placement{
		{Name: "L!=H!=R", Subst: map[string]string{}},
		{Name: "L=H!=R", Subst: map[string]string{"local": "home"}},
		{Name: "L!=H=R", Subst: map[string]string{"remote": "home"}},
		{Name: "L=R!=H", Subst: map[string]string{"remote": "local"}},
		{Name: "L=H=R", Subst: map[string]string{"local": "home", "remote": "home"}},
	}
}
