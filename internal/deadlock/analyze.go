package deadlock

import (
	"fmt"
	"time"

	"coherdb/internal/obs"
	"coherdb/internal/pool"
	"coherdb/internal/rel"
)

// Options tunes the analysis.
type Options struct {
	// Relaxed ignores messages when matching input and output assignments
	// during composition, capturing transaction interleavings (§4.1).
	// The paper's final method uses the relaxation; it defaults to on.
	Relaxed bool
	// NoPlacements disables the five quad-placement relations (ablation:
	// only L≠H≠R is considered). The Fig. 4 deadlock is invisible
	// without placements.
	NoPlacements bool
	// Closure repeatedly composes pairwise tables until no new
	// dependencies are added. The paper's first attempt used a transitive
	// closure and "abandoned [it] due to the excessive number of spurious
	// cycles"; it is kept as an ablation.
	Closure bool
	// Workers bounds edge-derivation and composition parallelism on the
	// shared worker pool; 0 means the pool's full size.
	Workers int
	// Label names the channel assignment in spans and metrics; empty
	// means the V table's own name. AnalyzeStory sets it per assignment.
	Label string
	// Tracer, when set, receives one "deadlock.analyze" span per analysis
	// carrying the Stats.
	Tracer obs.Tracer
	// Metrics, when set, records graph-size gauges (coherdb_vcg_nodes,
	// coherdb_vcg_edges, coherdb_vcg_cycles) and a cycle-search duration
	// histogram, labelled by assignment.
	Metrics *obs.Registry
}

// DefaultOptions returns the paper's final configuration.
func DefaultOptions() Options { return Options{Relaxed: true} }

// Stats reports the work done by one analysis.
type Stats struct {
	ControllerRows int
	PlacementRows  int
	ComposedRows   int
	ProtocolRows   int
	Rounds         int
	// Nodes and Edges are the virtual channel graph size; Cycles the
	// number of elementary cycles found in it.
	Nodes, Edges, Cycles int
	Elapsed              time.Duration
	// CycleElapsed is the portion of Elapsed spent in cycle search.
	CycleElapsed time.Duration
}

// Report is the outcome of one deadlock analysis.
type Report struct {
	Graph    *VCG
	Cycles   []Cycle
	Protocol []DepRow
	Stats    Stats
}

// Deadlocked reports whether any cycle was found.
func (r *Report) Deadlocked() bool { return len(r.Cycles) > 0 }

// ProtocolTable materializes the protocol dependency table as a relation.
func (r *Report) ProtocolTable() *rel.Table {
	return DepTable("protocol_deps", r.Protocol)
}

// Analyze runs the §4.1 method over the given controller tables and channel
// assignment.
func Analyze(controllers []*rel.Table, v *rel.Table, opts Options) (_ *Report, err error) {
	start := time.Now()
	label := opts.Label
	if label == "" {
		label = v.Name()
	}
	span := obs.StartSpan(opts.Tracer, "deadlock.analyze", obs.String("assignment", label))
	defer func() {
		if err != nil {
			span.SetAttr(obs.String("error", err.Error()))
		}
		span.Finish()
	}()
	assign, err := NewAssignment(v)
	if err != nil {
		return nil, err
	}
	exec := pool.Shared()
	workers := opts.Workers
	if workers <= 0 || workers > exec.Size() {
		workers = exec.Size()
	}

	// Individual controller dependency tables under exact matching — these
	// correspond to the placement L≠H≠R (§4.1). Each controller's edges
	// derive independently, so the tables are dealt to the shared pool;
	// results land at their table's index, keeping output order serial.
	individual := make([][]DepRow, len(controllers))
	if _, err := exec.Each(workers, len(controllers), 1, func(ti, _, _ int) error {
		rows, err := ControllerDeps(controllers[ti], assign)
		if err != nil {
			return err
		}
		individual[ti] = rows
		return nil
	}); err != nil {
		return nil, err
	}
	total := 0
	for _, rows := range individual {
		total += len(rows)
	}
	stats := Stats{ControllerRows: total}

	placements := Placements()
	if opts.NoPlacements {
		placements = placements[:1]
	}
	// Per-placement sets of individual tables.
	type set struct {
		placement Placement
		tables    [][]DepRow
	}
	sets := make([]set, len(placements))
	for pi, p := range placements {
		tables := make([][]DepRow, len(individual))
		for ti, rows := range individual {
			mod := make([]DepRow, len(rows))
			for i, r := range rows {
				mod[i] = applyPlacement(r, p)
			}
			tables[ti] = mod
			stats.PlacementRows += len(mod)
		}
		sets[pi] = set{placement: p, tables: tables}
	}

	// Pairwise dependency tables per placement set, on the shared pool.
	type job struct{ si, i, j int }
	var jobs []job
	for si := range sets {
		for i := range sets[si].tables {
			for j := range sets[si].tables {
				jobs = append(jobs, job{si: si, i: i, j: j})
			}
		}
	}
	results := make([][]DepRow, len(jobs))
	exec.Each(workers, len(jobs), 1, func(k, _, _ int) error {
		jb := jobs[k]
		results[k] = Compose(sets[jb.si].tables[jb.i], sets[jb.si].tables[jb.j], opts.Relaxed)
		return nil
	})

	// The protocol dependency table: union of all individual tables (all
	// placements) and all pairwise tables.
	var protocol []DepRow
	for _, s := range sets {
		for _, t := range s.tables {
			protocol = append(protocol, t...)
		}
	}
	for _, r := range results {
		stats.ComposedRows += len(r)
		protocol = append(protocol, r...)
	}
	protocol = dedupe(protocol)
	stats.Rounds = 1

	// Optional closure (the paper's abandoned first attempt).
	if opts.Closure {
		for {
			added := Compose(protocol, protocol, opts.Relaxed)
			before := len(protocol)
			protocol = dedupe(append(protocol, added...))
			stats.Rounds++
			if len(protocol) == before {
				break
			}
		}
	}
	stats.ProtocolRows = len(protocol)

	g := NewVCG(protocol)
	cycleStart := time.Now()
	cycles := g.Cycles()
	stats.CycleElapsed = time.Since(cycleStart)
	stats.Nodes = len(g.Nodes())
	stats.Edges = len(g.Edges())
	stats.Cycles = len(cycles)
	stats.Elapsed = time.Since(start)
	span.SetAttr(
		obs.Int("protocol_rows", stats.ProtocolRows),
		obs.Int("nodes", stats.Nodes),
		obs.Int("edges", stats.Edges),
		obs.Int("cycles", stats.Cycles),
		obs.Duration("cycle_elapsed", stats.CycleElapsed),
	)
	opts.observe(label, stats)
	return &Report{
		Graph:    g,
		Cycles:   cycles,
		Protocol: protocol,
		Stats:    stats,
	}, nil
}

// observe reports a finished analysis to the metrics registry.
func (o Options) observe(label string, stats Stats) {
	if o.Metrics == nil {
		return
	}
	l := obs.L("assignment", label)
	o.Metrics.Help("coherdb_vcg_nodes", "Virtual channel graph node count per assignment.")
	o.Metrics.Gauge("coherdb_vcg_nodes", l).Set(int64(stats.Nodes))
	o.Metrics.Help("coherdb_vcg_edges", "Virtual channel graph edge count per assignment.")
	o.Metrics.Gauge("coherdb_vcg_edges", l).Set(int64(stats.Edges))
	o.Metrics.Help("coherdb_vcg_cycles", "Elementary cycles found per assignment.")
	o.Metrics.Gauge("coherdb_vcg_cycles", l).Set(int64(stats.Cycles))
	o.Metrics.Help("coherdb_cycle_search_duration_seconds", "Wall time of VCG cycle search.")
	o.Metrics.Histogram("coherdb_cycle_search_duration_seconds", nil, l).ObserveDuration(stats.CycleElapsed)
}

// AnalyzeStory runs the analysis over a sequence of named assignments and
// returns the per-assignment reports — the §4.2 narrative: find cycles,
// modify V, repeat until none remain.
func AnalyzeStory(controllers []*rel.Table, assignments map[string]*rel.Table, order []string, opts Options) (map[string]*Report, error) {
	out := make(map[string]*Report, len(assignments))
	for _, name := range order {
		v, ok := assignments[name]
		if !ok {
			return nil, fmt.Errorf("deadlock: assignment %q missing", name)
		}
		po := opts
		po.Label = name
		rep, err := Analyze(controllers, v, po)
		if err != nil {
			return nil, fmt.Errorf("deadlock: analyzing %q: %w", name, err)
		}
		out[name] = rep
	}
	return out, nil
}
