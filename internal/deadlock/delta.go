package deadlock

import (
	"coherdb/internal/delta"
	"coherdb/internal/rel"
)

// AnalyzeDelta is Analyze with delta awareness: when prev is the report of
// an earlier Analyze over the same controllers and channel assignment, and
// d — a revision delta over the database those tables live in — shows none
// of them touched, prev is returned unchanged (reused=true) without
// re-deriving any dependency edges. A touched table, or a nil prev or d,
// falls back to a full Analyze.
//
// The analysis reads entire controller tables (every edge derivation joins
// across all columns), so any touch re-runs it; the win is the common edit
// loop where a revision changes invariant-adjacent tables but no
// controller, and the deadlock pass drops to a map lookup.
func AnalyzeDelta(controllers []*rel.Table, v *rel.Table, prev *Report, d *delta.Set, opts Options) (*Report, bool, error) {
	if prev != nil && d != nil {
		dirty := v != nil && d.TableTouched(v.Name())
		for _, c := range controllers {
			if dirty {
				break
			}
			dirty = d.TableTouched(c.Name())
		}
		if !dirty {
			if _, skipped := delta.Counters(opts.Metrics); skipped != nil {
				skipped.Add(1)
			}
			return prev, true, nil
		}
	}
	r, err := Analyze(controllers, v, opts)
	return r, false, err
}
