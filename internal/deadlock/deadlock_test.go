package deadlock

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

// Shared generated controller tables for the test package.
var (
	genOnce   sync.Once
	genTables []*rel.Table
	genErr    error
)

func controllerTables(t testing.TB) []*rel.Table {
	t.Helper()
	genOnce.Do(func() {
		specs, err := protocol.BuildAllSpecs()
		if err != nil {
			genErr = err
			return
		}
		for _, sb := range protocol.SpecBuilders() {
			tab, _, err := constraint.Solve(specs[sb.Name])
			if err != nil {
				genErr = err
				return
			}
			genTables = append(genTables, tab)
		}
	})
	if genErr != nil {
		t.Fatal(genErr)
	}
	return genTables
}

func assignment(t testing.TB, name string) *rel.Table {
	t.Helper()
	v, err := protocol.BuildAssignment(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAssignmentWrapper(t *testing.T) {
	v := assignment(t, protocol.AssignVC4)
	a, err := NewAssignment(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Channel("readex", "local", "home"); got != "VC0" {
		t.Fatalf("readex channel = %q", got)
	}
	if got := a.Channel("mread", "home", "home"); got != "VC4" {
		t.Fatalf("mread channel = %q", got)
	}
	if got := a.Channel("nosuch", "local", "home"); got != "" {
		t.Fatalf("unassigned hop = %q", got)
	}
	chans := a.Channels()
	if len(chans) != 5 { // VC0-VC4
		t.Fatalf("channels = %v", chans)
	}
	if a.Table() != v {
		t.Fatal("Table accessor broken")
	}
}

func TestAssignmentValidation(t *testing.T) {
	bad := rel.MustNewTable("V", "m", "s", "d") // missing v
	if _, err := NewAssignment(bad); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("err = %v", err)
	}
	dup := rel.MustNewTable("V", "m", "s", "d", "v")
	dup.MustInsert(rel.S("x"), rel.S("local"), rel.S("home"), rel.S("VC0"))
	dup.MustInsert(rel.S("x"), rel.S("local"), rel.S("home"), rel.S("VC1"))
	if _, err := NewAssignment(dup); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("conflicting assignment err = %v", err)
	}
	empty := rel.MustNewTable("V", "m", "s", "d", "v")
	empty.MustInsert(rel.Null(), rel.S("local"), rel.S("home"), rel.S("VC0"))
	if _, err := NewAssignment(empty); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("empty fields err = %v", err)
	}
}

func TestPlacements(t *testing.T) {
	ps := Placements()
	if len(ps) != 5 {
		t.Fatalf("placements = %d, want 5", len(ps))
	}
	var lhr Placement
	for _, p := range ps {
		if p.Name == "L!=H=R" {
			lhr = p
		}
	}
	if lhr.Apply("remote") != "home" || lhr.Apply("local") != "local" {
		t.Fatal("L!=H=R substitution wrong")
	}
}

func TestControllerDepsOnDirectory(t *testing.T) {
	tables := controllerTables(t)
	v, err := NewAssignment(assignment(t, protocol.AssignVC4))
	if err != nil {
		t.Fatal(err)
	}
	var d *rel.Table
	for _, tab := range tables {
		if tab.Name() == protocol.DirectoryTable {
			d = tab
		}
	}
	rows, err := ControllerDeps(d, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no dependencies from D")
	}
	// §4.2 R2 must be among them: (idone, remote, home, VC2) ->
	// (mread, home, home, VC4).
	found := false
	for _, r := range rows {
		if r.In == (VAssign{M: "idone", S: "remote", D: "home", VC: "VC2"}) &&
			r.Out == (VAssign{M: "mread", S: "home", D: "home", VC: "VC4"}) {
			found = true
		}
	}
	if !found {
		t.Fatal("R2 dependency row missing from D's dependency table")
	}
}

func TestControllerDepsOnMemory(t *testing.T) {
	tables := controllerTables(t)
	v, err := NewAssignment(assignment(t, protocol.AssignVC4))
	if err != nil {
		t.Fatal(err)
	}
	var m *rel.Table
	for _, tab := range tables {
		if tab.Name() == protocol.MemoryTable {
			m = tab
		}
	}
	rows, err := ControllerDeps(m, v)
	if err != nil {
		t.Fatal(err)
	}
	// §4.2 R1: (wb, home, home, VC4) -> (compl, home, home, VC2).
	found := false
	for _, r := range rows {
		if r.In == (VAssign{M: "wb", S: "home", D: "home", VC: "VC4"}) &&
			r.Out == (VAssign{M: "compl", S: "home", D: "home", VC: "VC2"}) {
			found = true
		}
	}
	if !found {
		t.Fatal("R1 dependency row missing from M's dependency table")
	}
}

// TestFigure4Composition reproduces the §4.2 derivation literally: R2 is
// modified under placement L≠H=R to R2', R1 composed with R2' (ignoring
// messages) yields R3 = (wb, home, home, VC4, mread, home, home, VC4) — a
// VC4 self-cycle — and the symmetric composition yields the VC2 cycle.
func TestFigure4Composition(t *testing.T) {
	r1 := DepRow{
		In:     VAssign{M: "wb", S: "home", D: "home", VC: "VC4"},
		Out:    VAssign{M: "compl", S: "home", D: "home", VC: "VC2"},
		Origin: "M",
	}
	r2 := DepRow{
		In:     VAssign{M: "idone", S: "remote", D: "home", VC: "VC2"},
		Out:    VAssign{M: "mread", S: "home", D: "home", VC: "VC4"},
		Origin: "D",
	}
	var lhr Placement
	for _, p := range Placements() {
		if p.Name == "L!=H=R" {
			lhr = p
		}
	}
	r2p := applyPlacement(r2, lhr)
	if r2p.In.S != "home" {
		t.Fatalf("R2' input source = %s, want home", r2p.In.S)
	}
	// Exact composition must NOT find it (compl != idone).
	if got := Compose([]DepRow{r1}, []DepRow{r2p}, false); len(got) != 0 {
		t.Fatalf("exact composition found %d rows, want 0", len(got))
	}
	// Relaxed composition yields R3.
	got := Compose([]DepRow{r1}, []DepRow{r2p}, true)
	if len(got) != 1 {
		t.Fatalf("relaxed composition rows = %d, want 1", len(got))
	}
	r3 := got[0]
	if r3.In.VC != "VC4" || r3.Out.VC != "VC4" || r3.In.M != "wb" || r3.Out.M != "mread" {
		t.Fatalf("R3 = %s, want (wb,home,home,VC4)->(mread,home,home,VC4)", r3)
	}
	// Symmetric composition yields the VC2 cycle.
	sym := Compose([]DepRow{r2p}, []DepRow{r1}, true)
	if len(sym) != 1 || sym[0].In.VC != "VC2" || sym[0].Out.VC != "VC2" {
		t.Fatalf("symmetric composition = %v", sym)
	}
}

func TestDeadlockStory(t *testing.T) {
	// C4/F4: the §4.2 narrative across the three assignments.
	tables := controllerTables(t)
	assignments := map[string]*rel.Table{}
	for _, name := range protocol.AssignmentNames() {
		assignments[name] = assignment(t, name)
	}
	reports, err := AnalyzeStory(tables, assignments, protocol.AssignmentNames(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	initial := reports[protocol.AssignInitial]
	vc4 := reports[protocol.AssignVC4]
	fixed := reports[protocol.AssignFixed]

	// Initial 4-channel assignment: several cycles, involving the home
	// directory<->memory sharing.
	if !initial.Deadlocked() {
		t.Fatal("initial assignment must have cycles")
	}
	// VC4 assignment: still deadlocked — the Fig. 4 VC2/VC4 cycle.
	if !vc4.Deadlocked() {
		t.Fatal("VC4 assignment must still have the Fig. 4 cycle")
	}
	foundVC4, foundVC2 := false, false
	for _, c := range vc4.Cycles {
		if len(c) == 1 && c[0] == "VC4" {
			foundVC4 = true
		}
		if len(c) == 1 && c[0] == "VC2" {
			foundVC2 = true
		}
	}
	if !foundVC4 || !foundVC2 {
		t.Fatalf("VC4/VC2 self-cycles not found; cycles = %v", vc4.Cycles)
	}
	// The evidence for the VC4 cycle must include the composed R3 row.
	foundR3 := false
	for _, r := range vc4.Graph.Evidence(Edge{From: "VC4", To: "VC4"}) {
		if r.In.M == "wb" && r.Out.M == "mread" {
			foundR3 = true
		}
	}
	if !foundR3 {
		t.Fatal("R3 (wb -> mread on VC4) not among the VC4 cycle evidence")
	}
	// Fixed assignment: deadlock free.
	if fixed.Deadlocked() {
		t.Fatalf("fixed assignment still deadlocks:\n%s", fixed.Graph.Describe())
	}
	if !fixed.Graph.Acyclic() {
		t.Fatal("Acyclic() disagrees with Cycles()")
	}
}

func TestPlacementRelaxationNecessary(t *testing.T) {
	// A2: without quad placements the Fig. 4 cycle is invisible.
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	opts := DefaultOptions()
	opts.NoPlacements = true
	rep, err := Analyze(tables, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cycles {
		if len(c) == 1 && c[0] == "VC4" {
			t.Fatal("VC4 self-cycle should require placement merging")
		}
	}
	full, err := Analyze(tables, v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Cycles) <= len(rep.Cycles) {
		t.Fatalf("placements should reveal more cycles: %d vs %d",
			len(full.Cycles), len(rep.Cycles))
	}
}

func TestExactVsRelaxedComposition(t *testing.T) {
	// The message-agnostic relaxation captures interleavings: it can only
	// add dependencies.
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	exact := DefaultOptions()
	exact.Relaxed = false
	repExact, err := Analyze(tables, v, exact)
	if err != nil {
		t.Fatal(err)
	}
	repRelaxed, err := Analyze(tables, v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if repRelaxed.Stats.ProtocolRows < repExact.Stats.ProtocolRows {
		t.Fatalf("relaxation lost rows: %d < %d",
			repRelaxed.Stats.ProtocolRows, repExact.Stats.ProtocolRows)
	}
}

func TestClosureSpuriousCycles(t *testing.T) {
	// A1: the abandoned transitive closure finds at least as many cycles
	// (the paper: "excessive number of spurious cycles") at higher cost.
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	pairwise, err := Analyze(tables, v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Closure = true
	closure, err := Analyze(tables, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if closure.Stats.Rounds <= 1 {
		t.Fatal("closure did not iterate")
	}
	if closure.Stats.ProtocolRows < pairwise.Stats.ProtocolRows {
		t.Fatal("closure lost dependencies")
	}
	if len(closure.Cycles) < len(pairwise.Cycles) {
		t.Fatalf("closure found fewer cycles: %d < %d",
			len(closure.Cycles), len(pairwise.Cycles))
	}
}

func TestProtocolTableShape(t *testing.T) {
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	rep, err := Analyze(tables, v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pt := rep.ProtocolTable()
	if pt.NumCols() != 9 { // 8 assignment columns + origin
		t.Fatalf("protocol dependency table has %d columns", pt.NumCols())
	}
	if pt.NumRows() != rep.Stats.ProtocolRows {
		t.Fatal("stats/table row mismatch")
	}
	if rep.Stats.ControllerRows == 0 || rep.Stats.ComposedRows == 0 {
		t.Fatalf("stats incomplete: %+v", rep.Stats)
	}
}

func TestVCGBasics(t *testing.T) {
	rows := []DepRow{
		{In: VAssign{M: "a", S: "x", D: "y", VC: "A"}, Out: VAssign{M: "b", S: "y", D: "z", VC: "B"}, Origin: "t"},
		{In: VAssign{M: "b", S: "y", D: "z", VC: "B"}, Out: VAssign{M: "c", S: "z", D: "x", VC: "C"}, Origin: "t"},
		{In: VAssign{M: "c", S: "z", D: "x", VC: "C"}, Out: VAssign{M: "a", S: "x", D: "y", VC: "A"}, Origin: "t"},
	}
	g := NewVCG(rows)
	if len(g.Nodes()) != 3 || len(g.Edges()) != 3 {
		t.Fatalf("graph shape: %v %v", g.Nodes(), g.Edges())
	}
	cycles := g.Cycles()
	if len(cycles) != 1 || len(cycles[0]) != 3 {
		t.Fatalf("cycles = %v", cycles)
	}
	if g.Acyclic() {
		t.Fatal("cycle missed by Acyclic")
	}
	ev := g.CycleEvidence(cycles[0])
	if len(ev) != 3 {
		t.Fatalf("evidence = %v", ev)
	}
	if !strings.Contains(g.Describe(), "cycle") {
		t.Fatal("Describe missing cycles")
	}
	if !strings.Contains(cycles[0].String(), "->") {
		t.Fatal("cycle rendering broken")
	}
}

func TestVCGAcyclicAndSelfLoop(t *testing.T) {
	dag := NewVCG([]DepRow{
		{In: VAssign{VC: "A"}, Out: VAssign{VC: "B"}},
		{In: VAssign{VC: "B"}, Out: VAssign{VC: "C"}},
	})
	if !dag.Acyclic() || len(dag.Cycles()) != 0 {
		t.Fatal("DAG misclassified")
	}
	if !strings.Contains(dag.Describe(), "deadlock free") {
		t.Fatal("Describe on DAG broken")
	}
	self := NewVCG([]DepRow{{In: VAssign{VC: "A"}, Out: VAssign{VC: "A"}}})
	cycles := self.Cycles()
	if len(cycles) != 1 || len(cycles[0]) != 1 {
		t.Fatalf("self-loop cycles = %v", cycles)
	}
	if self.Acyclic() {
		t.Fatal("self-loop missed")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	tables := controllerTables(t)
	bad := rel.MustNewTable("V", "m", "s")
	if _, err := Analyze(tables, bad, DefaultOptions()); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("err = %v", err)
	}
	noMsg := rel.MustNewTable("X", "foo", "bar")
	v := assignment(t, protocol.AssignVC4)
	if _, err := Analyze([]*rel.Table{noMsg}, v, DefaultOptions()); !errors.Is(err, ErrBadController) {
		t.Fatalf("err = %v", err)
	}
	if _, err := AnalyzeStory(tables, map[string]*rel.Table{}, []string{"missing"}, DefaultOptions()); err == nil {
		t.Fatal("missing assignment must error")
	}
}
