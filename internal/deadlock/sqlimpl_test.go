package deadlock

import (
	"testing"

	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sqlmini"
)

// TestSQLImplementationMatchesGo cross-checks the literal-SQL analysis
// against the Go implementation: identical edge sets and cycles for every
// assignment in the §4.2 story.
func TestSQLImplementationMatchesGo(t *testing.T) {
	tables := controllerTables(t)
	for _, name := range protocol.AssignmentNames() {
		v := assignment(t, name)
		goRep, err := Analyze(tables, v, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sqlRep, err := AnalyzeSQL(tables, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		goEdges := goRep.Graph.Edges()
		sqlEdges := sqlRep.Graph.Edges()
		if len(goEdges) != len(sqlEdges) {
			t.Fatalf("%s: edge counts differ: go=%v sql=%v", name, goEdges, sqlEdges)
		}
		for i := range goEdges {
			if goEdges[i] != sqlEdges[i] {
				t.Fatalf("%s: edge %d differs: go=%v sql=%v", name, i, goEdges[i], sqlEdges[i])
			}
		}
		if len(goRep.Cycles) != len(sqlRep.Cycles) {
			t.Fatalf("%s: cycle counts differ: go=%v sql=%v", name, goRep.Cycles, sqlRep.Cycles)
		}
	}
}

// TestSQLImplementationDependencyRows checks that the SQL path derives the
// published §4.2 rows.
func TestSQLImplementationDependencyRows(t *testing.T) {
	tables := controllerTables(t)
	v := assignment(t, protocol.AssignVC4)
	db := sqlmini.NewDB()
	rep, err := AnalyzeSQL(tables, v, db)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlocked() {
		t.Fatal("SQL analysis missed the deadlock")
	}
	// The intermediate SQL tables are inspectable, as in the paper.
	mdeps, ok := db.Table("M_deps")
	if !ok {
		t.Fatal("M_deps not materialized")
	}
	r1 := mdeps.Select(func(r rel.Row) bool {
		return r.Get("m1").Equal(rel.S("wb")) && r.Get("m2").Equal(rel.S("compl")) &&
			r.Get("vc1").Equal(rel.S("VC4")) && r.Get("vc2").Equal(rel.S("VC2"))
	})
	if r1.Empty() {
		t.Fatal("R1 missing from the SQL-built M dependency table")
	}
	// And the composed R3 row must appear in the protocol table.
	proto := db.MustTable("protocol_deps")
	r3 := proto.Select(func(r rel.Row) bool {
		return r.Get("m1").Equal(rel.S("wb")) && r.Get("m2").Equal(rel.S("mread")) &&
			r.Get("vc1").Equal(rel.S("VC4")) && r.Get("vc2").Equal(rel.S("VC4"))
	})
	if r3.Empty() {
		t.Fatal("R3 missing from the SQL-built protocol dependency table")
	}
}

func TestSQLImplementationBadInputs(t *testing.T) {
	tables := controllerTables(t)
	bad := rel.MustNewTable("V", "m", "s")
	if _, err := AnalyzeSQL(tables, bad, nil); err == nil {
		t.Fatal("malformed V must error")
	}
	noMsg := rel.MustNewTable("X", "foo")
	v := assignment(t, protocol.AssignVC4)
	if _, err := AnalyzeSQL([]*rel.Table{noMsg}, v, nil); err == nil {
		t.Fatal("malformed controller must error")
	}
}
