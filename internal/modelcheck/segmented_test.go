package modelcheck

import (
	"errors"
	"testing"

	"coherdb/internal/protocol"
	"coherdb/internal/sim"
)

// exploreBoth runs the in-memory and segmented engines over fresh
// clones of the same initial system and returns both reports.
func exploreBoth(t *testing.T, sys *sim.System, base Options, seg Options) (*Report, *Report) {
	t.Helper()
	base.Segmented = false
	base.HashStates = true
	seg.Segmented = true
	seg.HashStates = true
	serial, err := Explore(sys, base)
	if err != nil {
		t.Fatalf("serial explore: %v", err)
	}
	segRep, err := Explore(sys, seg)
	if err != nil {
		t.Fatalf("segmented explore: %v", err)
	}
	return serial, segRep
}

// requireCleanEquivalent asserts the strong contract for violation-free
// runs: identical state count, edge count, depth and reachable-set hash.
func requireCleanEquivalent(t *testing.T, serial, seg *Report) {
	t.Helper()
	if serial.Violation != nil || seg.Violation != nil {
		t.Fatalf("unexpected violation: serial=%+v segmented=%+v", serial.Violation, seg.Violation)
	}
	if serial.States != seg.States || serial.Edges != seg.Edges || serial.Depth != seg.Depth {
		t.Fatalf("serial (states=%d edges=%d depth=%d) != segmented (states=%d edges=%d depth=%d)",
			serial.States, serial.Edges, serial.Depth, seg.States, seg.Edges, seg.Depth)
	}
	if serial.StateHash != seg.StateHash {
		t.Fatalf("reachable-set hash mismatch: serial=%016x segmented=%016x",
			serial.StateHash, seg.StateHash)
	}
	if serial.StateHash == 0 {
		t.Fatal("StateHash not computed")
	}
}

func TestSegmentedCleanEquivalence(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	serial, seg := exploreBoth(t, sys,
		Options{MaxStates: 500000, CheckCoherence: true},
		Options{MaxStates: 500000, CheckCoherence: true})
	requireCleanEquivalent(t, serial, seg)
	if seg.Mem.BytesPerState <= 0 {
		t.Fatalf("segmented BytesPerState = %d", seg.Mem.BytesPerState)
	}
	if seg.Mem.BytesPerState >= serial.Mem.BytesPerState {
		t.Fatalf("segmented bytes/state %d not below in-memory %d",
			seg.Mem.BytesPerState, serial.Mem.BytesPerState)
	}
	t.Logf("states=%d edges=%d depth=%d hash=%016x; bytes/state in-memory=%d segmented=%d",
		seg.States, seg.Edges, seg.Depth, seg.StateHash,
		serial.Mem.BytesPerState, seg.Mem.BytesPerState)
}

func TestSegmentedCleanEquivalenceParallelAndSharded(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"workers1", Options{Workers: 1}},
		{"shards1_chunk7", Options{Shards: 1, ExpandChunk: 7}},
		{"shards64_block32", Options{Shards: 64, BlockRows: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			o.MaxStates = 500000
			o.CheckCoherence = true
			serial, seg := exploreBoth(t, sys,
				Options{MaxStates: 500000, CheckCoherence: true}, o)
			requireCleanEquivalent(t, serial, seg)
		})
	}
}

func TestSegmentedSpilledEquivalence(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	serial, seg := exploreBoth(t, sys,
		Options{MaxStates: 500000, CheckCoherence: true},
		Options{
			MaxStates:      500000,
			CheckCoherence: true,
			MemBudget:      8 << 10, // tiny: forces spilling and replays
			SpillDir:       t.TempDir(),
			BlockRows:      32,
		})
	requireCleanEquivalent(t, serial, seg)
	if seg.Mem.Spills == 0 || seg.Mem.SpilledBytes == 0 {
		t.Fatalf("expected spills under an 8KiB budget, got %+v", seg.Mem)
	}
	t.Logf("spilled run: %d spills, %d faults, %d replays, resident=%dB spilled=%dB",
		seg.Mem.Spills, seg.Mem.Faults, seg.Mem.Replays,
		seg.Mem.ResidentBytes, seg.Mem.SpilledBytes)
}

func TestSegmentedDeadlockEquivalence(t *testing.T) {
	sys := buildSystem(t, protocol.AssignVC4, map[string]int{"VC0": 2}, figure4Setup)
	serial, err := Explore(sys, Options{MaxStates: 500000})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"spilled", Options{MemBudget: 64 << 10, BlockRows: 64}},
		{"chunked", Options{ExpandChunk: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			o.Segmented = true
			o.MaxStates = 500000
			if o.MemBudget > 0 {
				o.SpillDir = t.TempDir()
			}
			seg, err := Explore(sys, o)
			if err != nil {
				t.Fatal(err)
			}
			requireSameViolation(t, serial, seg)
		})
	}
}

func requireSameViolation(t *testing.T, serial, seg *Report) {
	t.Helper()
	if serial.Violation == nil || seg.Violation == nil {
		t.Fatalf("violation missing: serial=%+v segmented=%+v", serial.Violation, seg.Violation)
	}
	if serial.Violation.Kind != seg.Violation.Kind {
		t.Fatalf("kind: serial=%s segmented=%s", serial.Violation.Kind, seg.Violation.Kind)
	}
	if len(serial.Violation.Trace) != len(seg.Violation.Trace) {
		t.Fatalf("trace length: serial=%d segmented=%d",
			len(serial.Violation.Trace), len(seg.Violation.Trace))
	}
	for i := range serial.Violation.Trace {
		if serial.Violation.Trace[i] != seg.Violation.Trace[i] {
			t.Fatalf("trace[%d]: serial=%v segmented=%v",
				i, serial.Violation.Trace[i], seg.Violation.Trace[i])
		}
	}
}

func TestSegmentedCoherenceViolationEquivalence(t *testing.T) {
	// Two modified copies of the same line: coherence is violated in the
	// initial state, so both engines must report it with an empty trace.
	seed := func(s *sim.System) {
		s.Node(0).SetCache(1, protocol.CacheM)
		s.Node(1).SetCache(1, protocol.CacheM)
		s.Dir().SetOwner(1, sim.NodeID(0))
	}
	sys := buildSystem(t, protocol.AssignFixed, nil, seed)
	serial, err := Explore(sys, Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Explore(sys, Options{CheckCoherence: true, Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameViolation(t, serial, seg)
	if serial.Violation.Kind != "coherence" || len(seg.Violation.Trace) != 0 {
		t.Fatalf("want coherence at the root with empty trace, got %+v", seg.Violation)
	}
}

func TestSegmentedStateLimit(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	rep, err := Explore(sys, Options{MaxStates: 10, Segmented: true})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if rep.States != 11 {
		t.Fatalf("states at limit = %d, want limit+1", rep.States)
	}
}

func TestSegmentedBudgetWithoutSpillDir(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	_, err := Explore(sys, Options{Segmented: true, MemBudget: 4 << 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The in-memory engine hits the same wall far earlier (its states
	// cost ~100x more), which is the whole point of the segment store.
	_, err = Explore(sys, Options{MemBudget: 4 << 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("in-memory err = %v, want ErrBudget", err)
	}
}

func TestSegmentedLeavesInitialUntouched(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, nil, figure4Setup)
	before := sys.Fingerprint()
	if _, err := Explore(sys, Options{Segmented: true, CheckCoherence: true}); err != nil {
		t.Fatal(err)
	}
	if sys.Fingerprint() != before {
		t.Fatal("segmented Explore mutated the initial system")
	}
}

// TestSegmentedWorkloadMatrix sweeps the generated-controller workloads
// the ISSUE's acceptance criteria reference: every (assignment,
// workload) pair must produce the identical reachable-set fingerprint
// and the identical violations on both engines.
func TestSegmentedWorkloadMatrix(t *testing.T) {
	workloads := []struct {
		name  string
		setup func(*sim.System)
	}{
		{"read", func(s *sim.System) {
			s.Node(0).Script(sim.Op{Kind: "prread", Addr: 1})
		}},
		{"read_read", func(s *sim.System) {
			s.Node(0).Script(sim.Op{Kind: "prread", Addr: 1})
			s.Node(1).Script(sim.Op{Kind: "prread", Addr: 1})
		}},
		{"write_read", func(s *sim.System) {
			s.Node(0).Script(sim.Op{Kind: "prwrite", Addr: 1})
			s.Node(1).Script(sim.Op{Kind: "prread", Addr: 1})
		}},
		{"evict_cross", figure4Setup},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, w.setup)
			serial, seg := exploreBoth(t, sys,
				Options{MaxStates: 500000, CheckCoherence: true},
				Options{MaxStates: 500000, CheckCoherence: true, ExpandChunk: 16})
			requireCleanEquivalent(t, serial, seg)
		})
	}
}
