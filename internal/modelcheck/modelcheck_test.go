package modelcheck

import (
	"errors"
	"sync"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sim"
)

var (
	tabOnce sync.Once
	tabVal  sim.Tables
	tabErr  error
)

func genTables(t testing.TB) sim.Tables {
	t.Helper()
	tabOnce.Do(func() {
		specs, err := protocol.BuildAllSpecs()
		if err != nil {
			tabErr = err
			return
		}
		solve := func(name string) *rel.Table {
			if tabErr != nil {
				return nil
			}
			tab, _, err := constraint.Solve(specs[name])
			if err != nil {
				tabErr = err
			}
			return tab
		}
		tabVal = sim.Tables{
			D: solve(protocol.DirectoryTable),
			M: solve(protocol.MemoryTable),
			C: solve(protocol.CacheTable),
			N: solve(protocol.NodeTable),
		}
	})
	if tabErr != nil {
		t.Fatal(tabErr)
	}
	return tabVal
}

func buildSystem(t testing.TB, assignName string, caps map[string]int, setup func(*sim.System)) *sim.System {
	t.Helper()
	v, err := protocol.BuildAssignment(assignName)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.NewSystem(sim.Config{
		Nodes:       2,
		ChannelCap:  1,
		ChannelCaps: caps,
		Tables:      genTables(t).Map(),
		Assignment:  v,
		MaxSteps:    100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	setup(sys)
	return sys
}

// figure4Setup recreates the Fig. 4 initial state without choreography:
// the model checker explores all interleavings, so no delays are needed.
func figure4Setup(s *sim.System) {
	const lineA, lineB = sim.Addr(0xA), sim.Addr(0xB)
	s.Node(0).SetCache(lineB, protocol.CacheM)
	s.Dir().SetOwner(lineB, sim.NodeID(0))
	s.Node(1).SetCache(lineA, protocol.CacheM)
	s.Dir().SetOwner(lineA, sim.NodeID(1))
	s.Node(0).Script(
		sim.Op{Kind: "previct", Addr: lineB},
		sim.Op{Kind: "prwrite", Addr: lineA},
	)
	s.Node(1).Script(sim.Op{Kind: "previct", Addr: lineA})
}

func TestExploreSimpleReadIsClean(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, func(s *sim.System) {
		s.Node(0).Script(sim.Op{Kind: "prread", Addr: 1})
	})
	rep, err := Explore(sys, Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %+v", rep.Violation)
	}
	if rep.States < 5 {
		t.Fatalf("states = %d, suspiciously few", rep.States)
	}
}

func TestExploreFindsFigure4Deadlock(t *testing.T) {
	// A3: the model checker finds the §4.2 deadlock by exhaustive
	// interleaving — no slow-memory choreography required.
	sys := buildSystem(t, protocol.AssignVC4, map[string]int{"VC0": 2}, figure4Setup)
	rep, err := Explore(sys, Options{MaxStates: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlocked() {
		t.Fatalf("deadlock not found in %d states", rep.States)
	}
	if len(rep.Violation.Trace) == 0 {
		t.Fatal("no counter-example trace")
	}
	t.Logf("deadlock at depth %d after %d states, %d edges (%.1fms)",
		len(rep.Violation.Trace), rep.States, rep.Edges,
		float64(rep.Elapsed.Microseconds())/1000)
}

func TestExploreFixedAssignmentDeadlockFree(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	rep, err := Explore(sys, Options{MaxStates: 500000, CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("violation under fixed assignment: %+v", rep.Violation)
	}
	t.Logf("exhausted %d states, %d edges, depth %d", rep.States, rep.Edges, rep.Depth)
}

func TestExploreStateLimit(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, map[string]int{"VC0": 2}, figure4Setup)
	_, err := Explore(sys, Options{MaxStates: 10})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestExploreLeavesInitialUntouched(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, nil, func(s *sim.System) {
		s.Node(0).Script(sim.Op{Kind: "prread", Addr: 1})
	})
	before := sys.Fingerprint()
	if _, err := Explore(sys, Options{}); err != nil {
		t.Fatal(err)
	}
	if sys.Fingerprint() != before {
		t.Fatal("Explore mutated the initial system")
	}
}

func TestCloneAndFingerprint(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, nil, figure4Setup)
	c := sys.Clone()
	if c.Fingerprint() != sys.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Progress the clone; the original must not change.
	acts := c.CandidateActions()
	if len(acts) == 0 {
		t.Fatal("no candidate actions")
	}
	changed := false
	for _, a := range acts {
		ch, err := c.Apply(a)
		if err != nil {
			t.Fatal(err)
		}
		if ch {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("no action progressed")
	}
	if c.Fingerprint() == sys.Fingerprint() {
		t.Fatal("apply did not change the fingerprint")
	}
}

func TestActionStringAndErrors(t *testing.T) {
	sys := buildSystem(t, protocol.AssignFixed, nil, func(*sim.System) {})
	if (sim.Action{Kind: "issue", Node: 1}).String() != "issue@node1" {
		t.Fatal("action rendering")
	}
	if (sim.Action{Kind: "deliver", Chan: ""}).String() != "deliver@internal" {
		t.Fatal("internal action rendering")
	}
	if _, err := sys.Apply(sim.Action{Kind: "deliver", Chan: "nosuch"}); err == nil {
		t.Fatal("unknown channel must error")
	}
	if _, err := sys.Apply(sim.Action{Kind: "issue", Node: 99}); err == nil {
		t.Fatal("unknown node must error")
	}
	if _, err := sys.Apply(sim.Action{Kind: "zap"}); err == nil {
		t.Fatal("unknown kind must error")
	}
}
