// Package modelcheck is an explicit-state model checker over the
// table-driven protocol: it explores every scheduling interleaving of a
// simulated system (breadth-first over sim.System fingerprints) and checks
// deadlock freedom and coherence safety in every reachable state.
//
// It is the baseline the paper discusses (§4.2: "Model checkers based on
// formal approaches... can detect such deadlocks. However, to use these
// tools, the controller tables need to be extensively abstracted to avoid
// the state explosion problem"): on small configurations it finds the same
// deadlocks as the SQL analysis; its state count explodes with the workload
// while the VCG analysis cost stays flat.
package modelcheck

import (
	"errors"
	"fmt"
	"time"

	"coherdb/internal/sim"
)

// ErrLimit is returned when exploration exceeds the state budget.
var ErrLimit = errors.New("modelcheck: state limit exceeded")

// Options tunes the search.
type Options struct {
	// MaxStates caps exploration; 0 means 200000.
	MaxStates int
	// CheckCoherence verifies MESI safety in every state.
	CheckCoherence bool
}

// CounterExample is a path from the initial state to a bad state.
type CounterExample struct {
	// Kind is "deadlock" or "coherence".
	Kind string
	// Trace is the action sequence leading to the bad state.
	Trace []sim.Action
	// Detail describes the violation.
	Detail string
}

// Report is the outcome of one exploration.
type Report struct {
	States    int
	Edges     int
	Depth     int
	Elapsed   time.Duration
	Violation *CounterExample
}

// Deadlocked reports whether a deadlock counter-example was found.
func (r *Report) Deadlocked() bool {
	return r.Violation != nil && r.Violation.Kind == "deadlock"
}

// node is one explored state; parent/action record the BFS tree for
// counter-example reconstruction.
type node struct {
	sys    *sim.System
	parent int
	action sim.Action
	depth  int
}

// Explore runs a breadth-first search over all interleavings of the given
// initial system. The system passed in is not modified.
func Explore(initial *sim.System, opts Options) (*Report, error) {
	limit := opts.MaxStates
	if limit <= 0 {
		limit = 200000
	}
	start := time.Now()
	rep := &Report{}
	finish := func() *Report {
		rep.Elapsed = time.Since(start)
		return rep
	}
	seen := map[string]bool{initial.Fingerprint(): true}
	all := []node{{sys: initial.Clone(), parent: -1}}
	queue := []int{0}
	rep.States = 1

	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		cur := all[idx]
		if cur.depth > rep.Depth {
			rep.Depth = cur.depth
		}
		if opts.CheckCoherence {
			if v := cur.sys.SafetyViolations(); len(v) > 0 {
				rep.Violation = &CounterExample{
					Kind:   "coherence",
					Trace:  traceOf(all, idx),
					Detail: fmt.Sprintf("%v", v),
				}
				return finish(), nil
			}
		}
		progressed := false
		for _, a := range cur.sys.CandidateActions() {
			succ := cur.sys.Clone()
			changed, err := succ.Apply(a)
			if err != nil {
				return nil, err
			}
			if !changed {
				continue
			}
			progressed = true
			rep.Edges++
			fp := succ.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			rep.States++
			if rep.States > limit {
				return finish(), ErrLimit
			}
			all = append(all, node{sys: succ, parent: idx, action: a, depth: cur.depth + 1})
			queue = append(queue, len(all)-1)
		}
		if !progressed && !cur.sys.Idle() {
			rep.Violation = &CounterExample{
				Kind:   "deadlock",
				Trace:  traceOf(all, idx),
				Detail: "no enabled action and work remains",
			}
			return finish(), nil
		}
	}
	return finish(), nil
}

// traceOf rebuilds the action path from the root to all[idx].
func traceOf(all []node, idx int) []sim.Action {
	var rev []sim.Action
	for idx >= 0 && all[idx].parent >= 0 {
		rev = append(rev, all[idx].action)
		idx = all[idx].parent
	}
	out := make([]sim.Action, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
