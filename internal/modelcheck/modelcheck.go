// Package modelcheck is an explicit-state model checker over the
// table-driven protocol: it explores every scheduling interleaving of a
// simulated system (breadth-first over sim.System fingerprints) and checks
// deadlock freedom and coherence safety in every reachable state.
//
// It is the baseline the paper discusses (§4.2: "Model checkers based on
// formal approaches... can detect such deadlocks. However, to use these
// tools, the controller tables need to be extensively abstracted to avoid
// the state explosion problem"): on small configurations it finds the same
// deadlocks as the SQL analysis; its state count explodes with the workload
// while the VCG analysis cost stays flat.
package modelcheck

import (
	"errors"
	"fmt"
	"time"

	"coherdb/internal/sim"
)

// ErrLimit is returned when exploration exceeds the state budget.
var ErrLimit = errors.New("modelcheck: state limit exceeded")

// ErrBudget is returned when exploration exceeds the memory budget and
// has no spill directory to grow into.
var ErrBudget = errors.New("modelcheck: memory budget exceeded")

// Options tunes the search.
type Options struct {
	// MaxStates caps exploration; 0 means 200000.
	MaxStates int
	// CheckCoherence verifies MESI safety in every state.
	CheckCoherence bool

	// Segmented switches to the out-of-core engine: the visited set
	// lives in compressed code segments (internal/segment) probed
	// through sharded fingerprint indexes, the frontier is expanded in
	// parallel on internal/pool with a deterministic merge, and sealed
	// segments optionally spill to SpillDir under MemBudget pressure.
	// Results (states, violations, reachable-set hash) are identical
	// to the in-memory engine.
	Segmented bool
	// MemBudget caps retained bytes. The in-memory engine returns
	// ErrBudget when its retained clones + fingerprints exceed it; the
	// segmented engine spills cold segments to SpillDir instead, or
	// returns ErrBudget when no SpillDir is configured. 0 = unlimited.
	MemBudget int64
	// SpillDir enables spill-to-disk for the segmented engine.
	SpillDir string
	// Shards is the visited-index shard count (segmented engine;
	// rounded up to a power of two; 0 means 16).
	Shards int
	// Workers bounds parallel frontier expansion (0 = all pool workers).
	Workers int
	// ExpandChunk is how many frontier states one parallel expansion
	// round covers; it bounds transient per-round memory (0 = 1024).
	ExpandChunk int
	// BlockRows is the segment seal threshold (0 = 4096).
	BlockRows int
	// HashStates computes Report.StateHash, the order-insensitive
	// fingerprint of the reachable set, on either engine.
	HashStates bool
}

// MemStats is the memory accounting of one exploration.
type MemStats struct {
	// ResidentBytes is retained in-memory state: compressed segments
	// plus unsealed tails for the segmented engine, retained clones +
	// fingerprint strings for the in-memory one.
	ResidentBytes int64
	// SpilledBytes / Segments / SpilledSegments / Spills / Faults
	// describe the segment stores (zero for the in-memory engine).
	SpilledBytes    int64
	Segments        int64
	SpilledSegments int64
	Spills          int64
	Faults          int64
	// IndexBytes is the sharded visited index; DictBytes the codec
	// dictionary; FrontierBytes the cached frontier systems.
	IndexBytes    int64
	DictBytes     int64
	FrontierBytes int64
	// Replays counts states re-materialized by replaying their action
	// path from the root (frontier cache misses under budget pressure).
	Replays int64
	// BytesPerState is total retained+spilled bytes over states.
	BytesPerState int64
}

// CounterExample is a path from the initial state to a bad state.
type CounterExample struct {
	// Kind is "deadlock" or "coherence".
	Kind string
	// Trace is the action sequence leading to the bad state.
	Trace []sim.Action
	// Detail describes the violation.
	Detail string
}

// Report is the outcome of one exploration.
type Report struct {
	States    int
	Edges     int
	Depth     int
	Elapsed   time.Duration
	Violation *CounterExample
	// StateHash is the order-insensitive XOR of the value-level hashes
	// of every reached state (set when Options.HashStates): two
	// explorations reached the same set iff the hashes match. It is
	// independent of dictionary code assignment, so it compares across
	// engines and processes.
	StateHash uint64
	// Mem is the engine's memory accounting.
	Mem MemStats
}

// Deadlocked reports whether a deadlock counter-example was found.
func (r *Report) Deadlocked() bool {
	return r.Violation != nil && r.Violation.Kind == "deadlock"
}

// node is one explored state; parent/action record the BFS tree for
// counter-example reconstruction.
type node struct {
	sys    *sim.System
	parent int
	action sim.Action
	depth  int
}

// Explore runs a breadth-first search over all interleavings of the given
// initial system. The system passed in is not modified. With
// Options.Segmented it dispatches to the out-of-core engine, which
// reaches the same states and violations at a fraction of the bytes
// per state.
func Explore(initial *sim.System, opts Options) (*Report, error) {
	if opts.Segmented {
		return exploreSegmented(initial, opts)
	}
	limit := opts.MaxStates
	if limit <= 0 {
		limit = 200000
	}
	start := time.Now()
	rep := &Report{}
	var retained int64
	finish := func() *Report {
		rep.Elapsed = time.Since(start)
		rep.Mem.ResidentBytes = retained
		if rep.States > 0 {
			rep.Mem.BytesPerState = retained / int64(rep.States)
		}
		return rep
	}
	var codec *sim.StateCodec
	var scratch []uint32
	if opts.HashStates {
		codec = sim.NewStateCodec(initial)
	}
	hash := func(s *sim.System) {
		if codec != nil {
			scratch = codec.Encode(s, scratch)
			rep.StateHash ^= codec.ValueHash(scratch)
		}
	}
	rootFP := initial.Fingerprint()
	seen := map[string]bool{rootFP: true}
	all := []node{{sys: initial.Clone(), parent: -1}}
	queue := []int{0}
	rep.States = 1
	retained += all[0].sys.ApproxBytes() + int64(len(rootFP)) + seenEntryBytes
	hash(all[0].sys)

	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		cur := all[idx]
		if cur.depth > rep.Depth {
			rep.Depth = cur.depth
		}
		if opts.CheckCoherence {
			if v := cur.sys.SafetyViolations(); len(v) > 0 {
				rep.Violation = &CounterExample{
					Kind:   "coherence",
					Trace:  traceOf(all, idx),
					Detail: fmt.Sprintf("%v", v),
				}
				return finish(), nil
			}
		}
		progressed := false
		for _, a := range cur.sys.CandidateActions() {
			succ := cur.sys.Clone()
			changed, err := succ.Apply(a)
			if err != nil {
				return nil, err
			}
			if !changed {
				continue
			}
			progressed = true
			rep.Edges++
			fp := succ.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			rep.States++
			if rep.States > limit {
				return finish(), ErrLimit
			}
			hash(succ)
			retained += succ.ApproxBytes() + int64(len(fp)) + seenEntryBytes
			if opts.MemBudget > 0 && retained > opts.MemBudget {
				return finish(), ErrBudget
			}
			all = append(all, node{sys: succ, parent: idx, action: a, depth: cur.depth + 1})
			queue = append(queue, len(all)-1)
		}
		if !progressed && !cur.sys.Idle() {
			rep.Violation = &CounterExample{
				Kind:   "deadlock",
				Trace:  traceOf(all, idx),
				Detail: "no enabled action and work remains",
			}
			return finish(), nil
		}
	}
	return finish(), nil
}

// seenEntryBytes approximates the map-entry overhead of one visited
// fingerprint in the in-memory engine (bucket slot + string header).
const seenEntryBytes = 64

// traceOf rebuilds the action path from the root to all[idx].
func traceOf(all []node, idx int) []sim.Action {
	var rev []sim.Action
	for idx >= 0 && all[idx].parent >= 0 {
		rev = append(rev, all[idx].action)
		idx = all[idx].parent
	}
	out := make([]sim.Action, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
