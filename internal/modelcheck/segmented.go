package modelcheck

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"coherdb/internal/pool"
	"coherdb/internal/segment"
	"coherdb/internal/sim"
)

// The out-of-core engine: states are fixed-width uint32 code tuples
// (sim.StateCodec) appended to a compressed segment store; membership
// is an exact sharded hash index over that store; the frontier expands
// level-synchronously in parallel rounds on internal/pool with a
// deterministic batch-ordered merge, so states, edges, violations and
// the reachable-set hash are identical to the in-memory engine's.
//
// Per state the engine retains ~a few dozen compressed bytes (tuple +
// 8B search-tree entry + 16B index slot) instead of an in-memory
// System clone plus fingerprint string (~2–4 KiB), and sealed segments
// spill to disk under budget pressure — the 2–3 orders of magnitude
// the ROADMAP asks for. Counter-example traces and violation details
// come from replaying the recorded action path from the root.

// rootParent marks state 0's parent slot in the search tree store.
const rootParent = math.MaxUint32

// cand is one changed successor produced during parallel expansion,
// in deterministic (state id, action) order.
type cand struct {
	parent   int64
	action   sim.Action
	tuple    []uint32
	hash     uint64
	seenID   int64 // >= 0 when the parallel pre-filter found it visited
	sys      *sim.System
	sysBytes int64
}

type segEngine struct {
	opts  Options
	codec *sim.StateCodec
	root  *sim.System

	vstore *segment.Store // state tuples; row id == state id
	tstore *segment.Store // [parent, action code] per state
	idx    *segment.Visited

	cache        map[int64]*sim.System // frontier systems kept under budget
	frontierRoom atomic.Int64
	replays      atomic.Int64

	rep   *Report
	limit int
}

func exploreSegmented(initial *sim.System, opts Options) (*Report, error) {
	limit := opts.MaxStates
	if limit <= 0 {
		limit = 200000
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 16
	}
	blockRows := opts.BlockRows
	if blockRows <= 0 {
		blockRows = 4096
	}
	chunk := opts.ExpandChunk
	if chunk <= 0 {
		chunk = 1024
	}

	start := time.Now()
	codec := sim.NewStateCodec(initial)
	// Budget split: the visited tuples dominate, the search tree is a
	// narrow width-2 store; both share the spill directory. The index,
	// codec dictionary and frontier cache are accounted against what
	// remains each level.
	var vb, tb int64
	if opts.MemBudget > 0 && opts.SpillDir != "" {
		vb = opts.MemBudget / 2
		tb = opts.MemBudget / 8
	}
	e := &segEngine{
		opts:  opts,
		codec: codec,
		root:  initial.CloneDetached(),
		vstore: segment.NewStore(segment.StoreConfig{
			Width: codec.Width(), BlockRows: blockRows,
			Budget: vb, SpillDir: opts.SpillDir,
		}),
		tstore: segment.NewStore(segment.StoreConfig{
			Width: 2, BlockRows: blockRows,
			Budget: tb, SpillDir: opts.SpillDir,
		}),
		cache: map[int64]*sim.System{},
		rep:   &Report{},
		limit: limit,
	}
	defer e.vstore.Close()
	defer e.tstore.Close()
	e.idx = segment.NewVisited(e.vstore, shards)
	segment.Track("modelcheck_visited", e.vstore)
	segment.Track("modelcheck_tree", e.tstore)
	defer segment.Untrack("modelcheck_visited")
	defer segment.Untrack("modelcheck_tree")

	finish := func() *Report {
		e.rep.Elapsed = time.Since(start)
		e.fillMemStats()
		return e.rep
	}

	// Root state.
	rootTuple := codec.Encode(e.root, nil)
	rootHash := segment.HashTuple(rootTuple)
	id := e.vstore.Append(rootTuple)
	e.idx.Insert(e.idx.ShardOf(rootHash), rootHash, id)
	e.tstore.Append([]uint32{rootParent, 0})
	e.rep.States = 1
	if opts.HashStates {
		e.rep.StateHash ^= codec.ValueHash(rootTuple)
	}
	e.rebalanceFrontier()
	e.cacheSystem(0, e.root, e.root.ApproxBytes())

	levelLo, levelHi := int64(0), int64(1)
	for depth := 0; levelLo < levelHi; depth++ {
		e.rep.Depth = depth

		// Phase 1: streaming coherence scan over the level's sealed
		// rows — no System, no row materialization, just code compares
		// against the codec's pre-interned M/E/S codes.
		coherMin := int64(-1)
		if opts.CheckCoherence {
			coherMin = e.coherenceScan(levelLo, levelHi)
		}
		expandHi := levelHi
		if coherMin >= 0 {
			// The in-memory engine would have dequeued (and expanded)
			// only the states before the violating one.
			expandHi = coherMin
		}

		// Phase 2: expand in rounds — parallel generation with a
		// deterministic batch-ordered merge, then sequential
		// dedupe/accept so state ids match the in-memory engine's
		// discovery order exactly.
		deadlockMin := int64(-1)
		for rlo := levelLo; rlo < expandHi && deadlockMin < 0; rlo += int64(chunk) {
			rhi := rlo + int64(chunk)
			if rhi > expandHi {
				rhi = expandHi
			}
			cands, roundDeadlock, err := e.expandRound(rlo, rhi)
			if err != nil {
				return nil, err
			}
			if roundDeadlock >= 0 {
				deadlockMin = roundDeadlock
			}
			stop, err := e.acceptRound(cands, deadlockMin >= 0)
			if err != nil {
				return finish(), err
			}
			if stop {
				return finish(), ErrLimit
			}
		}

		if deadlockMin >= 0 || coherMin >= 0 {
			vid, kind := coherMin, "coherence"
			if deadlockMin >= 0 && (coherMin < 0 || deadlockMin < coherMin) {
				vid, kind = deadlockMin, "deadlock"
			}
			detail := "no enabled action and work remains"
			if kind == "coherence" {
				sys := e.materialize(vid)
				detail = fmt.Sprintf("%v", sys.SafetyViolations())
			}
			e.rep.Violation = &CounterExample{
				Kind:   kind,
				Trace:  e.actionPath(vid),
				Detail: detail,
			}
			return finish(), nil
		}

		// Drop the consumed level from the frontier cache.
		for sid := levelLo; sid < levelHi; sid++ {
			if sys, ok := e.cache[sid]; ok {
				e.frontierRoom.Add(sys.ApproxBytes())
				delete(e.cache, sid)
			}
		}
		levelLo, levelHi = levelHi, e.vstore.Rows()

		// Budget enforcement without a spill directory: stop like the
		// in-memory engine instead of silently exceeding the cap.
		if opts.MemBudget > 0 && opts.SpillDir == "" && e.retainedBytes() > opts.MemBudget {
			return finish(), ErrBudget
		}
		e.rebalanceFrontier()
	}
	return finish(), nil
}

// retainedBytes sums the engine's unavoidable residency: segment
// stores, visited index and codec dictionary. The frontier cache is
// excluded — it bounds itself to whatever room the budget leaves and
// degrades to replay-from-root, so it is never a reason to fail.
func (e *segEngine) retainedBytes() int64 {
	vs, ts := e.vstore.Stats(), e.tstore.Stats()
	return vs.ResidentBytes + ts.ResidentBytes + e.idx.Bytes() + e.codec.Dict().Bytes()
}

func (e *segEngine) frontierBytes() int64 {
	n := int64(0)
	for _, sys := range e.cache {
		n += sys.ApproxBytes()
	}
	return n
}

// rebalanceFrontier recomputes how many bytes the frontier cache may
// still claim: whatever the budget leaves after stores, index and
// dictionary. Unbudgeted runs cache everything.
func (e *segEngine) rebalanceFrontier() {
	if e.opts.MemBudget <= 0 {
		e.frontierRoom.Store(math.MaxInt64 / 2)
		return
	}
	vs, ts := e.vstore.Stats(), e.tstore.Stats()
	fixed := vs.ResidentBytes + ts.ResidentBytes + e.idx.Bytes() + e.codec.Dict().Bytes()
	room := e.opts.MemBudget - fixed - e.frontierBytes()
	if room < 0 {
		room = 0
	}
	e.frontierRoom.Store(room)
}

func (e *segEngine) cacheSystem(id int64, sys *sim.System, bytes int64) {
	if e.opts.MemBudget > 0 && e.frontierRoom.Load() <= 0 {
		return
	}
	e.cache[id] = sys
	e.frontierRoom.Add(-bytes)
}

// coherenceScan streams the level's tuples and returns the lowest
// state id violating the MESI single-writer property (-1 if none):
// per address, more than one owner (M/E) or an owner alongside a
// sharer (S) across nodes — exactly sim.SafetyViolations, evaluated on
// raw codes without materializing a System.
func (e *segEngine) coherenceScan(lo, hi int64) int64 {
	nodes, addrs := e.codec.NumNodes(), e.codec.NumAddrs()
	found := int64(-1)
	e.vstore.Stream(lo, hi, func(id int64, tuple []uint32) bool {
		for a := 0; a < addrs; a++ {
			owners, sharers := 0, 0
			for n := 0; n < nodes; n++ {
				code := tuple[e.codec.CacheCol(n, a)]
				if e.codec.IsOwnerCode(code) {
					owners++
				} else if e.codec.IsSharerCode(code) {
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				found = id
				return false
			}
		}
		return true
	})
	return found
}

// expandRound expands states [rlo, rhi) in parallel and returns their
// changed successors in deterministic order (by state id, then
// candidate-action order — the in-memory engine's discovery order),
// plus the lowest deadlocked state id (-1 if none).
func (e *segEngine) expandRound(rlo, rhi int64) ([]cand, int64, error) {
	n := int(rhi - rlo)
	const morsel = 8
	batches := pool.Batches(n, morsel)
	perBatch := make([][]cand, batches)
	deadlocks := make([]int64, batches)
	for i := range deadlocks {
		deadlocks[i] = -1
	}
	var mu sync.Mutex // guards replay-path materialization (store faults are internally locked; this serializes cache misses only)

	_, err := pool.Shared().Each(e.opts.Workers, n, morsel, func(batch, blo, bhi int) error {
		var scratch, probe []uint32
		var out []cand
		for i := blo; i < bhi; i++ {
			id := rlo + int64(i)
			base := e.cache[id]
			if base == nil {
				mu.Lock()
				base = e.materializeLocked(id)
				mu.Unlock()
			}
			progressed := false
			for _, a := range base.CandidateActions() {
				succ := base.Clone()
				changed, err := succ.Apply(a)
				if err != nil {
					return err
				}
				if !changed {
					continue
				}
				progressed = true
				scratch = e.codec.Encode(succ, scratch)
				c := cand{
					parent: id,
					action: a,
					tuple:  append([]uint32(nil), scratch...),
					hash:   segment.HashTuple(scratch),
					seenID: -1,
				}
				// Pre-filter against the frozen index: inserts happen
				// only between rounds, so a hit here is definitive.
				var found bool
				var fid int64
				fid, found, probe = e.idx.Lookup(e.idx.ShardOf(c.hash), c.hash, scratch, probe)
				if found {
					c.seenID = fid
				} else if e.frontierRoom.Load() > 0 {
					c.sys = succ
					c.sysBytes = succ.ApproxBytes()
				}
				out = append(out, c)
			}
			if !progressed && !base.Idle() {
				if deadlocks[batch] < 0 || id < deadlocks[batch] {
					deadlocks[batch] = id
				}
			}
		}
		perBatch[batch] = out
		return nil
	})
	if err != nil {
		return nil, -1, err
	}
	var cands []cand
	for _, b := range perBatch {
		cands = append(cands, b...)
	}
	deadlockMin := int64(-1)
	for _, d := range deadlocks {
		if d >= 0 && (deadlockMin < 0 || d < deadlockMin) {
			deadlockMin = d
		}
	}
	return cands, deadlockMin, nil
}

// acceptRound merges one round's candidates sequentially: count edges,
// dedupe (pre-filter verdicts are definitive; fresh candidates probe
// again to catch same-round acceptances), append accepted tuples to
// the stores and index, and admit systems to the frontier cache.
// Returns stop=true when MaxStates is exceeded. When discard is set
// (a deadlock ends the level) successors are counted but not kept,
// matching the in-memory engine's early return.
func (e *segEngine) acceptRound(cands []cand, discard bool) (bool, error) {
	var probe []uint32
	tree := make([]uint32, 2)
	for i := range cands {
		c := &cands[i]
		e.rep.Edges++
		if discard {
			continue
		}
		if c.seenID >= 0 {
			continue
		}
		_, found, p := e.idx.Lookup(e.idx.ShardOf(c.hash), c.hash, c.tuple, probe)
		probe = p
		if found {
			if c.sys != nil {
				e.frontierRoom.Add(c.sysBytes)
			}
			continue
		}
		id := e.vstore.Append(c.tuple)
		e.idx.Insert(e.idx.ShardOf(c.hash), c.hash, id)
		tree[0] = uint32(c.parent)
		tree[1] = e.codec.EncodeAction(c.action)
		e.tstore.Append(tree)
		e.rep.States++
		if e.opts.HashStates {
			e.rep.StateHash ^= e.codec.ValueHash(c.tuple)
		}
		if e.rep.States > e.limit {
			return true, nil
		}
		if c.sys != nil {
			e.cacheSystem(id, c.sys, c.sysBytes)
		}
	}
	return false, nil
}

// materializeLocked rebuilds the System for a state by replaying its
// recorded action path from the root (frontier-cache miss under budget
// pressure). Callers hold the engine's replay mutex; the underlying
// store reads are themselves safe for concurrency.
func (e *segEngine) materializeLocked(id int64) *sim.System {
	if sys, ok := e.cache[id]; ok {
		return sys
	}
	path := e.actionPath(id)
	sys := e.root.Clone()
	for _, a := range path {
		if _, err := sys.Apply(a); err != nil {
			panic(fmt.Sprintf("modelcheck: replay diverged at %v: %v", a, err))
		}
	}
	e.replays.Add(1)
	return sys
}

// materialize is the sequential-context variant.
func (e *segEngine) materialize(id int64) *sim.System {
	return e.materializeLocked(id)
}

// actionPath rebuilds the action sequence from the root to state id
// from the width-2 search-tree store.
func (e *segEngine) actionPath(id int64) []sim.Action {
	var codes []uint32
	var buf []uint32
	for id > 0 {
		buf = e.tstore.Tuple(id, buf)
		codes = append(codes, buf[1])
		if buf[0] == rootParent {
			break
		}
		id = int64(buf[0])
	}
	out := make([]sim.Action, len(codes))
	for i := range codes {
		out[i] = e.codec.DecodeAction(codes[len(codes)-1-i])
	}
	return out
}

func (e *segEngine) fillMemStats() {
	vs, ts := e.vstore.Stats(), e.tstore.Stats()
	m := &e.rep.Mem
	m.ResidentBytes = vs.ResidentBytes + ts.ResidentBytes
	m.SpilledBytes = vs.SpilledBytes + ts.SpilledBytes
	m.Segments = vs.Segments + ts.Segments
	m.SpilledSegments = vs.SpilledSegs + ts.SpilledSegs
	m.Spills = vs.Spills + ts.Spills
	m.Faults = vs.Faults + ts.Faults
	m.IndexBytes = e.idx.Bytes()
	m.DictBytes = e.codec.Dict().Bytes()
	m.FrontierBytes = e.frontierBytes()
	m.Replays = e.replays.Load()
	if e.rep.States > 0 {
		total := m.ResidentBytes + m.SpilledBytes + m.IndexBytes + m.DictBytes
		m.BytesPerState = total / int64(e.rep.States)
	}
}
