// Package specfile reads and writes the textual "database input" of the
// paper's §1: a controller table specification comprising (i) the table
// schema — the column tables with their legal values, (ii) the SQL column
// constraints, and (iii) static checks as SQL queries that must return the
// empty relation. It is the on-disk interchange form for cohergen and the
// format protocol architects edit during revisions.
//
// Grammar (line oriented; "--" starts a comment; keyword sections may span
// lines until the next keyword):
//
//	table D_readex
//	input  inmsg = readex, data, idone  nonull
//	input  dirst = I, SI, Busy-sd, Busy-d, Busy-s
//	output remmsg = sinv
//	constrain remmsg:
//	    inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
//	check pv-consistent "state and vector agree":
//	    SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'
package specfile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"coherdb/internal/check"
	"coherdb/internal/constraint"
)

// ErrSyntax reports a malformed spec file.
var ErrSyntax = errors.New("specfile: syntax error")

// File is one parsed specification: the table spec plus its static checks.
type File struct {
	Spec   *constraint.Spec
	Checks []check.Invariant
}

func errLine(n int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, n, fmt.Sprintf(format, args...))
}

// Parse reads a specification.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type rawLine struct {
		n    int
		text string
	}
	var lines []rawLine
	n := 0
	for sc.Scan() {
		n++
		text := sc.Text()
		if i := strings.Index(text, "--"); i >= 0 {
			text = text[:i]
		}
		lines = append(lines, rawLine{n: n, text: text})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	f := &File{}
	var pending func(body string, atLine int) error
	var bodyBuf strings.Builder
	bodyLine := 0
	flush := func() error {
		if pending == nil {
			return nil
		}
		err := pending(strings.TrimSpace(bodyBuf.String()), bodyLine)
		pending = nil
		bodyBuf.Reset()
		return err
	}

	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.text)
		keyword := firstWord(trimmed)
		switch keyword {
		case "":
			if pending != nil {
				bodyBuf.WriteString(ln.text)
				bodyBuf.WriteByte('\n')
			}
			continue
		case "table", "input", "output", "constrain", "check":
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			// Continuation of a pending section body.
			if pending == nil {
				return nil, errLine(ln.n, "unexpected %q outside a section", trimmed)
			}
			bodyBuf.WriteString(ln.text)
			bodyBuf.WriteByte('\n')
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(trimmed, keyword))
		switch keyword {
		case "table":
			if f.Spec != nil {
				return nil, errLine(ln.n, "duplicate table declaration")
			}
			if rest == "" {
				return nil, errLine(ln.n, "table needs a name")
			}
			f.Spec = constraint.NewSpec(rest)
		case "input", "output":
			if f.Spec == nil {
				return nil, errLine(ln.n, "%s before table declaration", keyword)
			}
			col, err := parseColumn(rest, keyword == "input", ln.n)
			if err != nil {
				return nil, err
			}
			if err := f.Spec.AddColumn(col); err != nil {
				return nil, errLine(ln.n, "%v", err)
			}
		case "constrain":
			if f.Spec == nil {
				return nil, errLine(ln.n, "constrain before table declaration")
			}
			name, inline, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, errLine(ln.n, "constrain needs 'column:'")
			}
			name = strings.TrimSpace(name)
			bodyBuf.WriteString(inline)
			bodyBuf.WriteByte('\n')
			bodyLine = ln.n
			spec := f.Spec
			pending = func(body string, atLine int) error {
				if body == "" {
					return errLine(atLine, "empty constraint for %q", name)
				}
				if err := spec.Constrain(name, body); err != nil {
					return errLine(atLine, "%v", err)
				}
				return nil
			}
		case "check":
			head, inline, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, errLine(ln.n, "check needs 'name \"desc\":'")
			}
			name, desc, err := parseCheckHead(strings.TrimSpace(head), ln.n)
			if err != nil {
				return nil, err
			}
			bodyBuf.WriteString(inline)
			bodyBuf.WriteByte('\n')
			bodyLine = ln.n
			pending = func(body string, atLine int) error {
				if body == "" {
					return errLine(atLine, "empty check %q", name)
				}
				f.Checks = append(f.Checks, check.Invariant{
					Name: name, Desc: desc, Ref: "specfile", SQL: body,
				})
				return nil
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if f.Spec == nil {
		return nil, fmt.Errorf("%w: no table declaration", ErrSyntax)
	}
	return f, nil
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}

// parseColumn parses "name = v1, v2, ... [nonull]".
func parseColumn(rest string, input bool, line int) (constraint.Column, error) {
	name, vals, ok := strings.Cut(rest, "=")
	if !ok {
		return constraint.Column{}, errLine(line, "column needs 'name = values'")
	}
	col := constraint.Column{Name: strings.TrimSpace(name)}
	if !input {
		col.Kind = constraint.Output
	}
	if col.Name == "" {
		return constraint.Column{}, errLine(line, "column needs a name")
	}
	vals = strings.TrimSpace(vals)
	if strings.HasSuffix(vals, "nonull") {
		col.NoNull = true
		vals = strings.TrimSpace(strings.TrimSuffix(vals, "nonull"))
	}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		col.Values = append(col.Values, v)
	}
	if len(col.Values) == 0 {
		return constraint.Column{}, errLine(line, "column %q has no values", col.Name)
	}
	return col, nil
}

// parseCheckHead parses `name "description"`.
func parseCheckHead(head string, line int) (name, desc string, err error) {
	name = firstWord(head)
	if name == "" {
		return "", "", errLine(line, "check needs a name")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(head, name))
	if rest == "" {
		return name, name, nil
	}
	if !strings.HasPrefix(rest, `"`) || !strings.HasSuffix(rest, `"`) || len(rest) < 2 {
		return "", "", errLine(line, "check description must be double-quoted")
	}
	return name, rest[1 : len(rest)-1], nil
}

// Write renders a specification in the format Parse reads. Constraints are
// rendered from their parsed (resolved) form, so Parse(Write(f)) yields an
// equivalent specification.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "-- coherdb controller specification\ntable %s\n\n", f.Spec.Name)
	for _, col := range f.Spec.Columns() {
		kw := "input "
		if col.Kind == constraint.Output {
			kw = "output"
		}
		fmt.Fprintf(bw, "%s %s = %s", kw, col.Name, strings.Join(col.Values, ", "))
		if col.NoNull {
			fmt.Fprint(bw, "  nonull")
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw)
	for _, col := range f.Spec.Columns() {
		e := f.Spec.Constraint(col.Name)
		if e == nil {
			continue
		}
		fmt.Fprintf(bw, "constrain %s:\n    %s\n\n", col.Name, e.String())
	}
	for _, c := range f.Checks {
		fmt.Fprintf(bw, "check %s %q:\n    %s\n\n", c.Name, c.Desc, c.SQL)
	}
	return bw.Flush()
}
