package specfile

import (
	"errors"
	"strings"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/sqlmini"
)

const readexSpec = `
-- the Fig. 3 readex fragment as a database input
table D_readex

input  inmsg = readex, data, idone  nonull
input  dirst = I, SI, Busy-sd, Busy-d, Busy-s
input  dirpv = zero, one, gone
output locmsg = compl-data
output remmsg = sinv
output memmsg = mread
output nxtdirst = MESI, Busy-sd, Busy-d, Busy-s
output nxtdirpv = repl, dec

constrain dirst:
    inmsg = readex ? (dirst = I and dirpv = zero) or (dirst = SI and dirpv <> zero) :
    inmsg = data ? dirst = Busy-sd or dirst = Busy-d :
    dirst = Busy-sd or dirst = Busy-s

constrain dirpv:
    inmsg = data and dirst = Busy-d ? dirpv = zero :
    inmsg = idone and dirst = Busy-s ? dirpv = zero :
    inmsg = readex and dirst = I ? dirpv = zero : dirpv <> NULL

constrain remmsg:
    inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL

constrain memmsg:
    inmsg = readex ? memmsg = mread : memmsg = NULL

constrain locmsg:
    (inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
    locmsg = compl-data : locmsg = NULL

constrain nxtdirst:
    inmsg = readex and dirst = I ? nxtdirst = Busy-d :
    inmsg = readex ? nxtdirst = Busy-sd :
    inmsg = data and dirst = Busy-sd ? nxtdirst = Busy-s :
    inmsg = idone and dirst = Busy-sd ? nxtdirst = Busy-d :
    nxtdirst = MESI

constrain nxtdirpv:
    (inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
    nxtdirpv = repl :
    inmsg = idone and dirst = Busy-sd ? nxtdirpv = dec : nxtdirpv = NULL

check busy-has-no-vector "busy states carry no stable vector":
    SELECT dirst, nxtdirpv FROM D_readex
    WHERE dirst = 'I' AND nxtdirpv = 'dec'
`

func TestParseReadexSpec(t *testing.T) {
	f, err := Parse(strings.NewReader(readexSpec))
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Name != "D_readex" {
		t.Fatalf("name = %q", f.Spec.Name)
	}
	if got := len(f.Spec.InputNames()); got != 3 {
		t.Fatalf("inputs = %d", got)
	}
	if got := len(f.Spec.OutputNames()); got != 5 {
		t.Fatalf("outputs = %d", got)
	}
	if f.Spec.ConstraintCount() != 7 {
		t.Fatalf("constraints = %d", f.Spec.ConstraintCount())
	}
	if len(f.Checks) != 1 || f.Checks[0].Name != "busy-has-no-vector" {
		t.Fatalf("checks = %+v", f.Checks)
	}
	if f.Checks[0].Desc != "busy states carry no stable vector" {
		t.Fatalf("desc = %q", f.Checks[0].Desc)
	}
}

func TestParsedSpecSolvesToReferenceTable(t *testing.T) {
	f, err := Parse(strings.NewReader(readexSpec))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := constraint.Solve(f.Spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := protocol.Figure3FragmentSpec(1)
	if err != nil {
		t.Fatal(err)
	}
	// The reference spec also constrains inmsg (non-null), which the file
	// expresses via nonull; row sets must match.
	want, _, err := constraint.Solve(ref)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := got.SetName(want.Name()).EqualRows(want)
	if err != nil || !eq {
		t.Fatalf("parsed spec table differs: eq=%v err=%v (%d vs %d rows)",
			eq, err, got.NumRows(), want.NumRows())
	}
}

func TestCheckRunsAgainstGeneratedTable(t *testing.T) {
	f, err := Parse(strings.NewReader(readexSpec))
	if err != nil {
		t.Fatal(err)
	}
	tab, _, err := constraint.Solve(f.Spec)
	if err != nil {
		t.Fatal(err)
	}
	db := sqlmini.NewDB()
	db.PutTable(tab)
	for _, inv := range f.Checks {
		empty, err := db.QueryEmpty(inv.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if !empty {
			t.Fatalf("check %s violated", inv.Name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f1, err := Parse(strings.NewReader(readexSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, f1); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	t1, _, err := constraint.Solve(f1.Spec)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := constraint.Solve(f2.Spec)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := t1.EqualRows(t2.SetName(t1.Name()))
	if err != nil || !eq {
		t.Fatalf("round trip changed the table: eq=%v err=%v", eq, err)
	}
	if len(f2.Checks) != len(f1.Checks) {
		t.Fatal("round trip lost checks")
	}
}

func TestFullDirectorySpecRoundTrip(t *testing.T) {
	// The real controller specs render to the text format and back: the
	// re-parsed spec solves to the identical table. This is the paper's
	// "enhanced architecture specification" as a durable artifact.
	if testing.Short() {
		t.Skip("full D generation is slow")
	}
	for _, sb := range protocol.SpecBuilders() {
		spec, err := sb.Build()
		if err != nil {
			t.Fatal(err)
		}
		var rendered strings.Builder
		if err := Write(&rendered, &File{Spec: spec}); err != nil {
			t.Fatal(err)
		}
		reparsed, err := Parse(strings.NewReader(rendered.String()))
		if err != nil {
			t.Fatalf("%s: re-parse: %v", sb.Name, err)
		}
		protocol.RegisterFuncs(reparsed.Spec.RegisterFunc)
		want, _, err := constraint.Solve(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := constraint.Solve(reparsed.Spec)
		if err != nil {
			t.Fatalf("%s: solving re-parsed spec: %v", sb.Name, err)
		}
		eq, err := got.SetName(want.Name()).EqualRows(want)
		if err != nil || !eq {
			t.Fatalf("%s: round trip changed the table (%d vs %d rows)",
				sb.Name, got.NumRows(), want.NumRows())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no table":            `input a = 1`,
		"dup table":           "table t\ntable u",
		"bad column":          "table t\ninput broken",
		"empty values":        "table t\ninput a =",
		"constrain no colon":  "table t\ninput a = 1\nconstrain a",
		"empty constraint":    "table t\ninput a = 1\nconstrain a:\n",
		"unknown column":      "table t\ninput a = 1\nconstrain zz: a = \"1\"",
		"stray text":          "table t\nwhatnow",
		"check without colon": "table t\ninput a = 1\ncheck foo",
		"bad check desc":      "table t\ninput a = 1\ncheck foo bar: SELECT 1",
		"empty check":         "table t\ninput a = 1\ncheck foo:\n",
		"empty file":          "",
		"constrain first":     "constrain a: a = 1",
		"column first":        "input a = 1\ntable t",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		} else if !errors.Is(err, ErrSyntax) && !strings.Contains(err.Error(), "constraint") {
			t.Errorf("%s: err = %v, want ErrSyntax", name, err)
		}
	}
}

func TestParseCheckWithoutDescription(t *testing.T) {
	src := "table t\ninput a = 1\ncheck lonely: SELECT a FROM t WHERE a = 'zz'"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Checks) != 1 || f.Checks[0].Desc != "lonely" {
		t.Fatalf("checks = %+v", f.Checks)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
-- leading comment
table t  -- trailing comment

input a = x, y  -- values

constrain a:
    -- a comment inside a body
    a = "x"
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	tab, _, err := constraint.Solve(f.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("rows = %d\n%s", tab.NumRows(), tab)
	}
}
