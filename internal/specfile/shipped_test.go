package specfile

import (
	"os"
	"testing"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
)

// TestShippedSpecsInSync guards the spec artifacts under specs/: they must
// parse and solve to the same tables as the in-code builders, so a protocol
// revision that forgets to re-export them fails here.
func TestShippedSpecsInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("full D generation is slow")
	}
	cases := map[string]func() (*constraint.Spec, error){
		"../../specs/directory.spec": protocol.BuildDirectorySpec,
		"../../specs/readex.spec":    func() (*constraint.Spec, error) { return protocol.Figure3FragmentSpec(1) },
	}
	for path, build := range cases {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (re-export with cohergen -export-spec)", path, err)
		}
		parsed, err := Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		protocol.RegisterFuncs(parsed.Spec.RegisterFunc)
		got, _, err := constraint.Solve(parsed.Spec)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ref, err := build()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := constraint.Solve(ref)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := got.SetName(want.Name()).EqualRows(want)
		if err != nil || !eq {
			t.Fatalf("%s is out of sync with the code (%d vs %d rows); re-export with cohergen -export-spec",
				path, got.NumRows(), want.NumRows())
		}
	}
}
