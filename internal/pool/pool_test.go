package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEachCoversEveryIndexOnce checks the cursor contract: every index in
// [0, n) is visited exactly once, for morsel sizes that do and do not
// divide n.
func TestEachCoversEveryIndexOnce(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, morsel := range []int{1, 3, 16, 1024} {
			var mu sync.Mutex
			seen := make(map[int]int)
			st, err := p.Each(0, n, morsel, func(batch, lo, hi int) error {
				if lo/morsel != batch {
					t.Errorf("batch %d does not cover its slot: lo=%d morsel=%d", batch, lo, morsel)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != n {
				t.Fatalf("n=%d morsel=%d: visited %d indexes", n, morsel, len(seen))
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("index %d visited %d times", i, c)
				}
			}
			if want := Batches(n, morsel); st.Morsels != want {
				t.Fatalf("n=%d morsel=%d: %d morsels dealt, want %d", n, morsel, st.Morsels, want)
			}
		}
	}
}

// TestEachReportsLowestFailedBatch checks the deterministic error
// contract: when several morsels fail, the error of the lowest-numbered
// failed batch is reported.
func TestEachReportsLowestFailedBatch(t *testing.T) {
	p := New(4)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		_, err := p.Each(0, 64, 1, func(batch, lo, hi int) error {
			switch batch {
			case 3:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		// Batch 40 may be skipped once the stop flag is up, but if any
		// error is reported it must be the lowest one actually hit; and
		// batch 3 always runs before the cursor is exhausted unless a
		// failure stopped the deal first, so err is never nil.
		if err == nil {
			t.Fatal("no error reported")
		}
		if errors.Is(err, errHigh) {
			// Legal only if batch 3 never ran; it must then have been
			// cancelled by the stop flag that errHigh raised — but batch
			// 3 < 40 is claimed first by the monotone cursor, so this
			// cannot happen.
			t.Fatal("higher batch error shadowed the lower batch")
		}
	}
}

// TestEachNested issues Each calls from inside pool jobs on a small pool.
// The rendezvous recruiting contract (helpers join only when idle, the
// caller always drains its own cursor) means nesting must complete even
// when the pool is saturated; a regression here shows up as a test
// timeout.
func TestEachNested(t *testing.T) {
	p := New(2)
	var inner atomic.Int64
	_, err := p.Each(0, 4, 1, func(batch, lo, hi int) error {
		_, err := p.Each(0, 100, 7, func(b, l, h int) error {
			inner.Add(int64(h - l))
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if inner.Load() != 400 {
		t.Fatalf("nested Each covered %d of 400 indexes", inner.Load())
	}
}

// TestSharedPoolSingleton checks Shared returns one process-wide pool.
func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned distinct pools")
	}
	if Shared().Size() < 1 {
		t.Fatal("shared pool has no capacity")
	}
}

// TestEachConcurrentCalls runs many Each calls from many goroutines on one
// pool; under -race this exercises the rendezvous handoff and the stats
// accounting.
func TestEachConcurrentCalls(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			for iter := 0; iter < 50; iter++ {
				sum.Store(0)
				if _, err := p.Each(0, 200, 9, func(batch, lo, hi int) error {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if got := sum.Load(); got != 199*200/2 {
					t.Errorf("sum = %d", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkEachOverhead(b *testing.B) {
	p := New(4)
	for i := 0; i < b.N; i++ {
		if _, err := p.Each(0, 4096, 1024, func(batch, lo, hi int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
