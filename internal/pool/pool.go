// Package pool provides the shared morsel-execution worker pool behind the
// system's parallel phases: the SQL executor's morsel-driven scans and
// joins, the invariant suite's concurrent query dispatch and the deadlock
// analyzer's pairwise composition. One process-wide pool (Shared) serves
// every caller by default, so the check and deadlock suites compete for the
// same size-capped set of workers instead of each spawning its own
// goroutine herd.
//
// The scheduling model is morsel-driven work stealing in the style of the
// constraint solver's batchCursor: an Each call deals contiguous index
// batches ("morsels") from one atomic cursor to every participating
// worker. Workers that finish cheap morsels immediately claim the next one
// from the shared cursor, so skew never idles a worker, and because morsel
// k always covers [k*morsel, min((k+1)*morsel, n)), per-morsel results
// reassemble in deterministic input order regardless of which worker ran
// which morsel.
//
// Deadlock freedom under nesting: the caller of Each always drains the
// cursor itself, and helper workers are recruited by rendezvous only — a
// helper joins only if it is idle at submit time, never queued. An Each
// issued from inside a pool worker therefore degrades to inline execution
// when the pool is saturated instead of waiting on workers that could be
// waiting on it.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"coherdb/internal/obs"
)

// Stats describes one Each call: how many morsels were dealt, how many
// were stolen (claimed by a worker beyond its fair share of the batch
// count), and each participant's busy time (the caller first, then helpers
// in completion order).
type Stats struct {
	// Workers is the number of participants that ran morsels, including
	// the calling goroutine.
	Workers int
	// Morsels is the number of batches dealt from the cursor.
	Morsels int
	// Steals counts morsels claimed by a participant beyond its fair
	// share ceil(Morsels/Workers) — nonzero steals mean the work was
	// skewed and stealing rebalanced it.
	Steals int
	// Busy is each participant's wall time spent draining the cursor.
	Busy []time.Duration
}

// Pool is a size-capped set of reusable worker goroutines. The zero value
// is not usable; construct with New or use Shared. A Pool never shuts
// down: its workers park on a rendezvous channel between calls and cost
// nothing while idle.
type Pool struct {
	size  int
	once  sync.Once
	ready chan func()

	// tracer holds an obs.Tracer (may be unset). When set, every Each
	// call opens a "pool.each" span with one "pool.worker" child per
	// participant, each tagged with a lane attribute so trace viewers
	// render one track per worker.
	tracer atomic.Value
	// metrics holds a *poolMetrics (may be unset).
	metrics atomic.Pointer[poolMetrics]
}

// poolMetrics is the instrument set registered by SetMetrics.
type poolMetrics struct {
	morsels     *obs.Counter
	steals      *obs.Counter
	busy        *obs.Gauge
	workers     *obs.Gauge
	recruitMiss *obs.Counter
}

// tracerBox wraps the Tracer interface so atomic.Value sees one concrete
// type even if callers pass different Tracer implementations over time.
type tracerBox struct{ t obs.Tracer }

// SetTracer attaches a tracer; Each calls made after this emit per-worker
// lane spans. Safe to call concurrently with Each.
func (p *Pool) SetTracer(t obs.Tracer) { p.tracer.Store(tracerBox{t}) }

func (p *Pool) loadTracer() obs.Tracer {
	if b, ok := p.tracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// SetMetrics registers the pool's instruments on reg and starts
// publishing: morsels dealt, steals, currently busy participants, the
// participant cap, and recruit misses (Each calls that found a helper
// slot already busy and degraded toward inline execution).
func (p *Pool) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		p.metrics.Store(nil)
		return
	}
	reg.Help("coherdb_pool_morsels_total", "Morsel batches dealt by the worker pool.")
	reg.Help("coherdb_pool_steals_total", "Morsels claimed beyond a participant's fair share.")
	reg.Help("coherdb_pool_busy_workers", "Participants currently draining a morsel cursor.")
	reg.Help("coherdb_pool_workers", "Participant cap of the pool.")
	reg.Help("coherdb_pool_recruit_misses_total", "Helper recruitments that found no idle worker.")
	m := &poolMetrics{
		morsels:     reg.Counter("coherdb_pool_morsels_total"),
		steals:      reg.Counter("coherdb_pool_steals_total"),
		busy:        reg.Gauge("coherdb_pool_busy_workers"),
		workers:     reg.Gauge("coherdb_pool_workers"),
		recruitMiss: reg.Counter("coherdb_pool_recruit_misses_total"),
	}
	m.workers.Set(int64(p.size))
	p.metrics.Store(m)
}

// New returns a pool that will run at most size concurrent participants
// per Each call (including the caller). size <= 0 means GOMAXPROCS.
// Worker goroutines start lazily on first use.
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size}
}

var (
	sharedMu sync.Mutex
	shared   *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first use.
// The SQL executor, the invariant suite and the deadlock analyzer all draw
// from it unless given a dedicated pool.
func Shared() *Pool {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if shared == nil {
		shared = New(0)
	}
	return shared
}

// Size returns the pool's participant cap.
func (p *Pool) Size() int { return p.size }

// start spawns the helper goroutines (size-1 of them: the caller of Each
// is always the remaining participant).
func (p *Pool) start() {
	p.once.Do(func() {
		p.ready = make(chan func())
		for i := 0; i < p.size-1; i++ {
			go func() {
				for job := range p.ready {
					job()
				}
			}()
		}
	})
}

// cursor deals morsel batches of [0, n) through one atomic counter.
type cursor struct {
	next   atomic.Int64
	n      int
	morsel int
}

// grab claims the next batch; ok is false once the space is exhausted.
func (c *cursor) grab() (batch, lo, hi int, ok bool) {
	l := int(c.next.Add(int64(c.morsel))) - c.morsel
	if l >= c.n {
		return 0, 0, 0, false
	}
	h := l + c.morsel
	if h > c.n {
		h = c.n
	}
	return l / c.morsel, l, h, true
}

// Batches returns how many morsels Each will deal for n items.
func Batches(n, morsel int) int {
	if n <= 0 {
		return 0
	}
	if morsel < 1 {
		morsel = 1
	}
	return (n + morsel - 1) / morsel
}

// Each runs fn over every morsel of [0, n): fn(batch, lo, hi) with batch k
// covering [k*morsel, min((k+1)*morsel, n)). Up to cap participants run
// concurrently (0 or anything above the pool size means the pool size);
// the calling goroutine always participates, so Each makes progress even
// when every pool worker is busy. The first error (from the lowest-
// numbered morsel that failed) stops the deal and is returned. fn must be
// safe for concurrent invocation on distinct morsels.
func (p *Pool) Each(cap, n, morsel int, fn func(batch, lo, hi int) error) (Stats, error) {
	if n <= 0 {
		return Stats{}, nil
	}
	if morsel < 1 {
		morsel = 1
	}
	workers := p.size
	if cap > 0 && cap < workers {
		workers = cap
	}
	batches := Batches(n, morsel)
	if workers > batches {
		workers = batches
	}
	cur := &cursor{n: n, morsel: morsel}

	met := p.metrics.Load()
	var eachSpan *obs.Span
	if tr := p.loadTracer(); tr != nil {
		eachSpan = obs.StartSpan(tr, "pool.each",
			obs.Int("n", n), obs.Int("morsel", morsel), obs.Int("cap", workers))
	}

	var (
		stop     atomic.Bool
		errMu    sync.Mutex
		errBatch = -1
		firstErr error
	)
	fail := func(batch int, err error) {
		errMu.Lock()
		if errBatch < 0 || batch < errBatch {
			errBatch, firstErr = batch, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	drain := func() (claims int, busy time.Duration) {
		start := time.Now()
		for !stop.Load() {
			batch, lo, hi, ok := cur.grab()
			if !ok {
				break
			}
			claims++
			if err := fn(batch, lo, hi); err != nil {
				fail(batch, err)
				break
			}
		}
		return claims, time.Since(start)
	}
	// lane runs one participant's drain on a numbered trace lane (0 is the
	// caller, 1.. are helpers), maintaining the busy-workers gauge around
	// it. The off path (no tracer, no metrics) adds only nil checks per
	// participant per Each call — the lane name is never formatted.
	lane := func(idx int) (claims int, busy time.Duration) {
		if met != nil {
			met.busy.Add(1)
		}
		var sp *obs.Span
		if eachSpan != nil {
			name := "main"
			if idx > 0 {
				name = fmt.Sprintf("worker-%d", idx)
			}
			sp = eachSpan.Child("pool.worker", obs.String("lane", name))
		}
		claims, busy = drain()
		if sp != nil {
			sp.SetAttr(obs.Int("morsels", claims), obs.Duration("busy", busy))
			sp.Finish()
		}
		if met != nil {
			met.busy.Add(-1)
		}
		return claims, busy
	}
	finishEach := func(st Stats) {
		if met != nil {
			met.morsels.Add(int64(st.Morsels))
			met.steals.Add(int64(st.Steals))
		}
		if eachSpan != nil {
			eachSpan.SetAttr(obs.Int("workers", st.Workers),
				obs.Int("morsels", st.Morsels), obs.Int("steals", st.Steals))
			eachSpan.Finish()
		}
	}

	if workers <= 1 {
		claims, busy := lane(0)
		st := Stats{Workers: 1, Morsels: claims, Busy: []time.Duration{busy}}
		finishEach(st)
		return st, firstErr
	}

	p.start()
	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
		claimed []int
		busys   []time.Duration
	)
	record := func(claims int, busy time.Duration) {
		statsMu.Lock()
		claimed = append(claimed, claims)
		busys = append(busys, busy)
		statsMu.Unlock()
	}
	var laneIdx atomic.Int32 // helper lane numbers, assigned in run order
	helper := func() {
		defer wg.Done()
		claims, busy := lane(int(laneIdx.Add(1)))
		if claims > 0 {
			record(claims, busy)
		}
	}
	// Recruit idle helpers by rendezvous: a busy pool contributes nobody
	// and the caller drains alone, which keeps nested Each calls live.
	for i := 1; i < workers; i++ {
		wg.Add(1)
		select {
		case p.ready <- helper:
		default:
			wg.Done()
			if met != nil {
				met.recruitMiss.Inc()
			}
		}
	}
	callerClaims, callerBusy := lane(0)
	wg.Wait()

	st := Stats{Workers: 1, Morsels: callerClaims, Busy: append([]time.Duration{callerBusy}, busys...)}
	for _, c := range claimed {
		st.Workers++
		st.Morsels += c
	}
	fair := (st.Morsels + st.Workers - 1) / st.Workers
	for _, c := range append([]int{callerClaims}, claimed...) {
		if c > fair {
			st.Steals += c - fair
		}
	}
	finishEach(st)
	return st, firstErr
}
