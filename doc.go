// Package coherdb reproduces "Early Error Detection in Industrial Strength
// Cache Coherence Protocols Using SQL" (Subramaniam, IPPS 2003): a
// table-driven methodology in which cache coherence protocol controllers
// are relational tables generated from SQL column constraints, statically
// checked with SQL for invariants and channel deadlocks, and mapped onto
// hardware implementation tables with SQL while preserving the debugged
// behaviour.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// this root package carries the benchmark harness that regenerates every
// quantitative artefact of the paper (bench_test.go) and the repository
// documentation.
package coherdb
