// Command cohersql is an interactive SQL shell over the protocol database:
// the eight generated controller tables plus anything created during the
// session. It is the ad-hoc interface the paper's architects used to query
// and check the tables.
//
// Usage:
//
//	cohersql                                       # REPL on stdin
//	cohersql -q "SELECT COUNT(*) FROM D"           # one-shot query
//	cohersql -q "EXPLAIN SELECT ..."               # show the query plan without executing
//	cohersql -q "EXPLAIN ANALYZE SELECT ..."       # run it and show per-operator rows/time/morsels
//	echo "SELECT DISTINCT inmsg FROM D" | cohersql
//	cohersql -metrics -q "..."                     # Prometheus-style metrics to stdout at exit
//	cohersql -trace -q "..."                       # per-statement spans as JSON lines to stderr
//	cohersql -listen :8080                         # live diagnostics: /metrics /healthz /debug/pprof /traces /queries
//	cohersql -trace-out trace.json -q "..."        # Perfetto-loadable Chrome trace of the session
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"coherdb/internal/core"
	"coherdb/internal/obs"
)

func main() {
	query := flag.String("q", "", "execute one statement and exit")
	strict := flag.Bool("strict-nulls", true, "use ANSI NULL semantics (off = constraint dialect)")
	workers := flag.Int("workers", 0, "bound within-query morsel parallelism (0 = shared pool size, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel scan batch (0 = default 1024)")
	traceFlag := flag.Bool("trace", false, "collect per-statement spans and dump them as JSON lines to stderr at exit")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style metrics and session query stats to stdout at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	flag.Parse()

	diag, err := core.StartDiag(core.DiagConfig{
		Trace: *traceFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if err != nil {
		fail(err)
	}

	p := core.New()
	diag.Attach(p)
	fmt.Fprintln(os.Stderr, "generating controller tables...")
	if err := p.Generate(); err != nil {
		fail(err)
	}
	p.DB.SetStrictNulls(*strict)
	p.DB.SetWorkers(*workers)
	if *morsel > 0 {
		p.DB.SetMorselSize(*morsel)
	}
	fmt.Fprintf(os.Stderr, "tables: %s\n", strings.Join(p.DB.Names(), ", "))
	defer func() {
		if diag.Registry != nil {
			publishDBStats(diag.Registry, p)
		}
		diag.Close()
	}()

	exec := func(stmt string) {
		res, err := p.DB.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		if res.Table != nil {
			fmt.Print(res.Table.String())
		} else {
			fmt.Printf("ok (%d rows affected)\n", res.Affected)
		}
	}

	if *query != "" {
		exec(*query)
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(os.Stderr, "coherdb> ")
		} else {
			fmt.Fprint(os.Stderr, "    ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		if buf.Len() == 0 && trimmed == "tables" {
			fmt.Println(strings.Join(p.DB.Names(), "\n"))
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			exec(buf.String())
			buf.Reset()
		}
		prompt()
	}
	// Execute a trailing statement without a semicolon.
	if strings.TrimSpace(buf.String()) != "" {
		exec(buf.String())
	}
}

// publishDBStats turns the session's aggregate query statistics into
// registry counters so -metrics covers the SQL layer too.
func publishDBStats(reg *obs.Registry, p *core.Pipeline) {
	st := p.DB.Stats()
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"coherdb_sql_statements_total", "Statements executed this session.", st.Statements},
		{"coherdb_sql_queries_total", "SELECT statements executed this session.", st.Queries},
		{"coherdb_sql_rows_scanned_total", "Rows scanned by table scans.", st.RowsScanned},
		{"coherdb_sql_rows_produced_total", "Rows produced (or affected) by statements.", st.RowsProduced},
		{"coherdb_sql_hash_joins_total", "Joins executed with the hash strategy.", st.HashJoins},
		{"coherdb_sql_loop_joins_total", "Joins executed with the nested-loop strategy.", st.LoopJoins},
		{"coherdb_sql_pushdown_hits_total", "WHERE conjuncts pushed below a join.", st.PushdownHits},
	} {
		reg.Help(c.name, c.help)
		reg.Counter(c.name).Add(c.v)
	}
	reg.Help("coherdb_sql_eval_seconds", "Total statement evaluation time.")
	reg.Histogram("coherdb_sql_eval_seconds", nil).ObserveDuration(st.EvalTime)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohersql:", err)
	os.Exit(1)
}
