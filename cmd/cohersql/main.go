// Command cohersql is an interactive SQL shell over the protocol database:
// the eight generated controller tables plus anything created during the
// session. It is the ad-hoc interface the paper's architects used to query
// and check the tables.
//
// Usage:
//
//	cohersql                                       # REPL on stdin
//	cohersql -q "SELECT COUNT(*) FROM D"           # one-shot query
//	echo "SELECT DISTINCT inmsg FROM D" | cohersql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"coherdb/internal/core"
)

func main() {
	query := flag.String("q", "", "execute one statement and exit")
	strict := flag.Bool("strict-nulls", true, "use ANSI NULL semantics (off = constraint dialect)")
	flag.Parse()

	p := core.New()
	fmt.Fprintln(os.Stderr, "generating controller tables...")
	if err := p.Generate(); err != nil {
		fail(err)
	}
	p.DB.SetStrictNulls(*strict)
	fmt.Fprintf(os.Stderr, "tables: %s\n", strings.Join(p.DB.Names(), ", "))

	exec := func(stmt string) {
		res, err := p.DB.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		if res.Table != nil {
			fmt.Print(res.Table.String())
		} else {
			fmt.Printf("ok (%d rows affected)\n", res.Affected)
		}
	}

	if *query != "" {
		exec(*query)
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(os.Stderr, "coherdb> ")
		} else {
			fmt.Fprint(os.Stderr, "    ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		if buf.Len() == 0 && trimmed == "tables" {
			fmt.Println(strings.Join(p.DB.Names(), "\n"))
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			exec(buf.String())
			buf.Reset()
		}
		prompt()
	}
	// Execute a trailing statement without a semicolon.
	if strings.TrimSpace(buf.String()) != "" {
		exec(buf.String())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohersql:", err)
	os.Exit(1)
}
