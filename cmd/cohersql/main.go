// Command cohersql is an interactive SQL shell over the protocol database:
// the eight generated controller tables plus anything created during the
// session. It is the ad-hoc interface the paper's architects used to query
// and check the tables.
//
// Usage:
//
//	cohersql                                       # REPL on stdin
//	cohersql -q "SELECT COUNT(*) FROM D"           # one-shot query
//	cohersql -q "EXPLAIN SELECT ..."               # show the query plan without executing
//	cohersql -q "EXPLAIN ANALYZE SELECT ..."       # run it and show per-operator rows/time/morsels
//	echo "SELECT DISTINCT inmsg FROM D" | cohersql
//	cohersql -metrics -q "..."                     # Prometheus-style metrics to stdout at exit
//	cohersql -trace -q "..."                       # per-statement spans as JSON lines to stderr
//	cohersql -listen :8080                         # live diagnostics: /metrics /healthz /debug/pprof /traces /queries
//	cohersql -trace-out trace.json -q "..."        # Perfetto-loadable Chrome trace of the session
//	cohersql -serve :7433                          # multi-session line-protocol server (MVCC sessions, \recheck)
//	cohersql -serve-http :7434                     # HTTP/JSON API: /v1/query /v1/session /v1/recheck
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/core"
	"coherdb/internal/obs"
	"coherdb/internal/server"
)

func main() {
	query := flag.String("q", "", "execute one statement and exit")
	strict := flag.Bool("strict-nulls", true, "use ANSI NULL semantics (off = constraint dialect)")
	workers := flag.Int("workers", 0, "bound within-query morsel parallelism (0 = shared pool size, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel scan batch (0 = default 1024)")
	traceFlag := flag.Bool("trace", false, "collect per-statement spans and dump them as JSON lines to stderr at exit")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style metrics and session query stats to stdout at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	serveAddr := flag.String("serve", "", "serve the multi-session line protocol on this address, e.g. :7433 (SIGINT/SIGTERM drains)")
	serveHTTP := flag.String("serve-http", "", "serve the HTTP/JSON query API (/v1/query, /v1/session, /v1/recheck) on this address")
	maxSessions := flag.Int("max-sessions", 0, "server mode: bound on concurrent sessions (0 = default 64)")
	flag.Parse()

	diag, err := core.StartDiag(core.DiagConfig{
		Trace: *traceFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if err != nil {
		fail(err)
	}

	p := core.New()
	diag.Attach(p)
	fmt.Fprintln(os.Stderr, "generating controller tables...")
	if err := p.Generate(); err != nil {
		fail(err)
	}
	p.DB.SetStrictNulls(*strict)
	p.DB.SetWorkers(*workers)
	if *morsel > 0 {
		p.DB.SetMorselSize(*morsel)
	}
	fmt.Fprintf(os.Stderr, "tables: %s\n", strings.Join(p.DB.Names(), ", "))
	defer func() {
		if diag.Registry != nil {
			publishDBStats(diag.Registry, p)
		}
		diag.Close()
	}()

	if *serveAddr != "" || *serveHTTP != "" {
		serve(p, diag, *serveAddr, *serveHTTP, *maxSessions, *workers)
		return
	}

	exec := func(stmt string) {
		res, err := p.DB.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		if res.Table != nil {
			fmt.Print(res.Table.String())
		} else {
			fmt.Printf("ok (%d rows affected)\n", res.Affected)
		}
	}

	if *query != "" {
		exec(*query)
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(os.Stderr, "coherdb> ")
		} else {
			fmt.Fprint(os.Stderr, "    ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "quit" || trimmed == "exit" || trimmed == `\q`) {
			return
		}
		if buf.Len() == 0 && trimmed == "tables" {
			fmt.Println(strings.Join(p.DB.Names(), "\n"))
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			exec(buf.String())
			buf.Reset()
		}
		prompt()
	}
	// Execute a trailing statement without a semicolon.
	if strings.TrimSpace(buf.String()) != "" {
		exec(buf.String())
	}
}

// serve runs the multi-session query server until SIGINT/SIGTERM, then
// drains: in-flight statements finish, clients hear a goodbye, and the
// diagnostics server completes its last scrape before the process exits.
func serve(p *core.Pipeline, diag *core.Diag, lineAddr, httpAddr string, maxSessions, workers int) {
	srv := server.New(server.Config{
		DB:          p.DB,
		Suite:       check.ProtocolSuite(),
		MaxSessions: maxSessions,
		Workers:     workers,
		Tracer:      diag.Tracer,
		Metrics:     diag.Registry,
	})
	if lineAddr != "" {
		if err := srv.Serve(lineAddr); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "line protocol on %s (one statement per line; \\begin \\recheck \\epoch \\quit)\n", srv.Addr())
	}
	if httpAddr != "" {
		if err := srv.ServeHTTP(httpAddr); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "http/json api on http://%s/v1/ (query, session, recheck)\n", srv.HTTPAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "%v: draining sessions...\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	_ = diag.Shutdown(ctx)
}

// publishDBStats turns the session's aggregate query statistics into
// registry counters so -metrics covers the SQL layer too.
func publishDBStats(reg *obs.Registry, p *core.Pipeline) {
	st := p.DB.Stats()
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"coherdb_sql_statements_total", "Statements executed this session.", st.Statements},
		{"coherdb_sql_queries_total", "SELECT statements executed this session.", st.Queries},
		{"coherdb_sql_rows_scanned_total", "Rows scanned by table scans.", st.RowsScanned},
		{"coherdb_sql_rows_produced_total", "Rows produced (or affected) by statements.", st.RowsProduced},
		{"coherdb_sql_hash_joins_total", "Joins executed with the hash strategy.", st.HashJoins},
		{"coherdb_sql_loop_joins_total", "Joins executed with the nested-loop strategy.", st.LoopJoins},
		{"coherdb_sql_pushdown_hits_total", "WHERE conjuncts pushed below a join.", st.PushdownHits},
	} {
		reg.Help(c.name, c.help)
		reg.Counter(c.name).Add(c.v)
	}
	reg.Help("coherdb_sql_eval_seconds", "Total statement evaluation time.")
	reg.Histogram("coherdb_sql_eval_seconds", nil).ObserveDuration(st.EvalTime)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohersql:", err)
	os.Exit(1)
}
