// Command cohermap maps the debugged directory table onto hardware (§5):
// it builds the extended table ED, partitions it into the nine
// implementation tables, verifies the reconstruction, and optionally emits
// generated controller code.
//
// Usage:
//
//	cohermap                      # map, verify, print table sizes
//	cohermap -emit go > dctrl.go  # emit Go lookup functions
//	cohermap -emit verilog        # emit Verilog-style case blocks
package main

import (
	"flag"
	"fmt"
	"os"

	"coherdb/internal/core"
	"coherdb/internal/hwmap"
)

func main() {
	emit := flag.String("emit", "", "emit generated code: go or verilog")
	pkg := flag.String("pkg", "dctrl", "package name for -emit go")
	spansFlag := flag.Bool("spans", false, "collect generation/mapping spans and dump them as JSON lines to stderr at exit")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style metrics to stdout at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	flag.Parse()

	diag, err := core.StartDiag(core.DiagConfig{
		Trace: *spansFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if err != nil {
		fail(err)
	}
	defer diag.Close()

	p := core.New()
	diag.Attach(p)
	if err := p.Generate(); err != nil {
		fail(err)
	}
	if err := p.MapToHardware(); err != nil {
		fail(err)
	}
	m := p.Report.Mapping
	fmt.Fprintf(os.Stderr, "ED: %d rows x %d cols\n", m.Extended.NumRows(), m.Extended.NumCols())
	names := hwmap.ImplementationTableNames()
	for i, t := range m.Tables {
		fmt.Fprintf(os.Stderr, "  %-16s %4d rows x %2d cols\n", names[i], t.NumRows(), t.NumCols())
	}
	fmt.Fprintln(os.Stderr, "reconstruction verified: ED is contained in the reassembled tables")

	switch *emit {
	case "":
	case "go":
		if err := hwmap.GenerateGo(os.Stdout, *pkg, m); err != nil {
			fail(err)
		}
		hwmap.GenerateGoKeyHelper(os.Stdout)
	case "verilog":
		if err := hwmap.GenerateVerilog(os.Stdout, m); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown -emit %q", *emit))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohermap:", err)
	os.Exit(1)
}
