// Command cohergen generates the protocol controller tables from their
// constraint specifications (§3).
//
// Usage:
//
//	cohergen -stats                  # generate all 8 tables, print scale
//	cohergen -table D -filter readex # print the Fig. 3 readex rows of D
//	cohergen -out tables/            # dump every table as CSV
//	cohergen -compare                # incremental vs monolithic on the
//	                                 # Fig. 3 fragment (C1's shape)
//	cohergen -stats -metrics         # append solver counters (candidates,
//	                                 # pruned) as Prometheus text to stdout
//	cohergen -stats -trace           # dump per-solve spans as JSON lines
//	                                 # to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/constraint"
	"coherdb/internal/core"
	"coherdb/internal/obs"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/specfile"
	"coherdb/internal/sqlmini"
)

func main() {
	table := flag.String("table", "", "print one generated table (D, M, C, N, R, IO, INT, SY)")
	filter := flag.String("filter", "", "restrict -table output to rows whose inmsg matches")
	stats := flag.Bool("stats", false, "print generation statistics for all tables")
	steps := flag.Bool("steps", false, "with -stats: also print the per-column solve profile (domain, candidates, memo hits, rows, elapsed)")
	out := flag.String("out", "", "dump all tables as CSV into this directory")
	compare := flag.Bool("compare", false, "compare incremental vs monolithic solving on a reduced spec")
	incremental := flag.Bool("incremental", false, "demonstrate delta-driven re-solving: per controller, a fresh solve vs a memoized re-solve")
	specPath := flag.String("spec", "", "solve a spec file (see specs/readex.spec) instead of the built-in protocol")
	diffFiles := flag.String("diff", "", "diff two table revisions: old.csv,new.csv")
	diffKey := flag.String("key", "", "comma-separated key columns for -diff (inputs of the table)")
	exportSpec := flag.String("export-spec", "", "write a controller's database input (schema + constraints) to stdout: D, M, C, N, R, IO, INT, SY")
	traceFlag := flag.Bool("trace", false, "collect per-solve spans and dump them as JSON lines to stderr at exit")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style solver metrics to stdout at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	workers := flag.Int("workers", 0, "bound solver and check parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	diag, err := core.StartDiag(core.DiagConfig{
		Trace: *traceFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if err != nil {
		fail(err)
	}
	tr, reg := diag.Tracer, diag.Registry
	defer diag.Close()

	if *compare {
		if err := runCompare(tr, reg, *workers); err != nil {
			fail(err)
		}
		return
	}
	if *incremental {
		if err := runIncrementalGen(tr, reg, *workers); err != nil {
			fail(err)
		}
		return
	}
	if *specPath != "" {
		if err := runSpecFile(*specPath, tr, reg, *workers); err != nil {
			fail(err)
		}
		return
	}
	if *diffFiles != "" {
		if err := runDiff(*diffFiles, *diffKey); err != nil {
			fail(err)
		}
		return
	}
	if *exportSpec != "" {
		for _, sb := range protocol.SpecBuilders() {
			if sb.Name != *exportSpec {
				continue
			}
			spec, err := sb.Build()
			if err != nil {
				fail(err)
			}
			if err := specfile.Write(os.Stdout, &specfile.File{Spec: spec}); err != nil {
				fail(err)
			}
			return
		}
		fail(fmt.Errorf("no controller %q", *exportSpec))
	}

	p := core.New()
	p.SetWorkers(*workers)
	diag.Attach(p)
	start := time.Now()
	if err := p.Generate(); err != nil {
		fail(err)
	}
	fmt.Printf("generated %d controller tables in %v\n", len(p.Report.GenStats), time.Since(start).Round(time.Millisecond))

	if *stats {
		for _, sb := range protocol.SpecBuilders() {
			st := p.Report.GenStats[sb.Name]
			t := p.DB.MustTable(sb.Name)
			fmt.Printf("  %-4s %4d rows x %2d cols  (%7d candidates, %d memo hits, %d steps, compiled in %v)\n",
				sb.Name, t.NumRows(), t.NumCols(), st.Candidates, st.MemoHits, st.Steps,
				st.CompileTime.Round(time.Microsecond))
			if *steps {
				for i, step := range st.StepStats {
					fmt.Printf("       step %d %-10s domain=%-3d candidates=%-6d memo=%-6d rows=%-5d %v\n",
						i+1, step.Column, step.Domain, step.Candidates, step.MemoHits,
						step.Rows, step.Elapsed.Round(time.Microsecond))
				}
			}
		}
	}
	if *table != "" {
		t, ok := p.DB.Table(*table)
		if !ok {
			fail(fmt.Errorf("no table %q", *table))
		}
		if *filter != "" {
			t = t.Select(func(r rel.Row) bool { return r.Get("inmsg").Equal(rel.S(*filter)) })
		}
		fmt.Print(t.String())
	}
	if *out != "" {
		if err := p.WriteTables(*out); err != nil {
			fail(err)
		}
		fmt.Printf("tables written to %s\n", *out)
	}
}

// runCompare reproduces the §3 timing claim's shape on the Fig. 3 fragment:
// the incremental solver prunes early and stays fast; the monolithic
// conjunction enumerates the full cross product.
func runCompare(tr obs.Tracer, reg *obs.Registry, workers int) error {
	spec, err := protocol.Figure3FragmentSpec(1)
	if err != nil {
		return err
	}
	opts := constraint.Options{Workers: workers, Tracer: tr, Metrics: reg}
	t0 := time.Now()
	inc, si, err := constraint.SolveOpts(spec, opts)
	if err != nil {
		return err
	}
	dInc := time.Since(t0)
	t0 = time.Now()
	mono, sm, err := constraint.MonolithicOpts(spec, opts)
	if err != nil {
		return err
	}
	dMono := time.Since(t0)
	eq, err := inc.EqualRows(mono)
	if err != nil {
		return err
	}
	fmt.Printf("spec: %d columns, assignment space %d\n", len(spec.ColumnNames()), spec.SpaceSize())
	fmt.Printf("incremental: %4d rows, %8d candidates, %v\n", inc.NumRows(), si.Candidates, dInc)
	fmt.Printf("monolithic:  %4d rows, %8d candidates, %v\n", mono.NumRows(), sm.Candidates, dMono)
	fmt.Printf("tables equal: %v; candidate ratio %.0fx, time ratio %.1fx\n",
		eq, float64(sm.Candidates)/float64(si.Candidates),
		float64(dMono)/float64(dInc))
	return nil
}

// runIncrementalGen shows what the per-step solve memo buys: for every
// controller it times a fresh IncrementalSolver solve, then a re-solve of
// the unchanged spec, which replays every step from the memo and hands the
// previous table back by pointer.
func runIncrementalGen(tr obs.Tracer, reg *obs.Registry, workers int) error {
	opts := constraint.Options{Workers: workers, Tracer: tr, Metrics: reg}
	fmt.Printf("  %-4s %5s %14s %14s %7s %9s\n",
		"ctrl", "rows", "fresh", "re-solve", "reused", "speedup")
	for _, sb := range protocol.SpecBuilders() {
		spec, err := sb.Build()
		if err != nil {
			return err
		}
		inc := constraint.NewIncrementalSolver(spec, opts)
		t0 := time.Now()
		tab, _, err := inc.Solve()
		if err != nil {
			return err
		}
		fresh := time.Since(t0)
		t0 = time.Now()
		again, st, err := inc.Solve()
		if err != nil {
			return err
		}
		resolve := time.Since(t0)
		if again != tab {
			return fmt.Errorf("cohergen: %s: re-solve of an unchanged spec did not reuse the table", sb.Name)
		}
		fmt.Printf("  %-4s %5d %14v %14v %4d/%-2d %8.0fx\n",
			sb.Name, tab.NumRows(), fresh.Round(time.Microsecond), resolve.Round(time.Microsecond),
			st.ReusedSteps, st.Steps,
			float64(fresh)/float64(resolve))
	}
	return nil
}

// runSpecFile parses a textual database input, solves it, prints the
// resulting table and runs its static checks.
func runSpecFile(path string, tr obs.Tracer, reg *obs.Registry, workers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sf, err := specfile.Parse(f)
	if err != nil {
		return err
	}
	protocol.RegisterFuncs(sf.Spec.RegisterFunc)
	tab, stats, err := constraint.SolveOpts(sf.Spec, constraint.Options{Workers: workers, Tracer: tr, Metrics: reg})
	if err != nil {
		return err
	}
	fmt.Print(tab.String())
	fmt.Printf("%d rows from %d candidates\n", stats.Rows, stats.Candidates)
	if len(sf.Checks) == 0 {
		return nil
	}
	db := sqlmini.NewDB()
	protocol.RegisterFuncs(db.Register)
	db.PutTable(tab)
	results := check.SuiteFrom(sf.Checks).Run(db, check.Options{Workers: workers, Tracer: tr, Metrics: reg})
	failed := 0
	for _, r := range results {
		status := "ok"
		if r.Err != nil {
			return fmt.Errorf("check %s: %w", r.Invariant.Name, r.Err)
		}
		if !r.Passed() {
			status = "VIOLATED"
			failed++
		}
		fmt.Printf("check %-32s %s\n", r.Invariant.Name, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d check(s) violated", failed)
	}
	return nil
}

// runDiff compares two CSV table revisions, keyed if -key was given.
func runDiff(files, key string) error {
	parts := strings.Split(files, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants old.csv,new.csv")
	}
	load := func(path string) (*rel.Table, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rel.ReadCSV(path, f)
	}
	oldT, err := load(parts[0])
	if err != nil {
		return err
	}
	newT, err := load(parts[1])
	if err != nil {
		return err
	}
	newT.SetName(oldT.Name())
	var d *rel.Diff
	if key != "" {
		d, err = rel.DiffByKey(oldT, newT, strings.Split(key, ","))
	} else {
		d, err = rel.DiffTables(oldT, newT)
	}
	if err != nil {
		return err
	}
	return d.Write(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohergen:", err)
	os.Exit(1)
}
