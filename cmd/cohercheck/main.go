// Command cohercheck runs the paper's static analyses: the §4.3 invariant
// suite and the §4.1 virtual-channel deadlock analysis.
//
// Usage:
//
//	cohercheck                       # everything: invariants + deadlock story
//	cohercheck -invariants           # only the ~50-invariant suite
//	cohercheck -deadlock -assign vc4 # analyze one channel assignment
//	cohercheck -messages             # print the Figure 1 message catalog
//	cohercheck -metrics              # append Prometheus-style metrics (per-invariant
//	                                 # durations, solver counters, VCG sizes) to stdout
//	cohercheck -trace                # dump collected spans as JSON lines to stderr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/core"
	"coherdb/internal/deadlock"
	"coherdb/internal/modelcheck"
	"coherdb/internal/obs"
	"coherdb/internal/protocol"
	"coherdb/internal/segment"
	"coherdb/internal/sim"
)

func main() {
	invariants := flag.Bool("invariants", false, "run only the invariant suite")
	deadlocks := flag.Bool("deadlock", false, "run only the deadlock analysis")
	assign := flag.String("assign", "", "analyze a single assignment (initial4, vc4, fixed)")
	messages := flag.Bool("messages", false, "print the message catalog (Figure 1)")
	repair := flag.Bool("repair", false, "with -assign: iteratively repair the assignment until cycle free")
	mc := flag.Bool("modelcheck", false, "explore the Fig. 4 configuration with the explicit-state model checker (baseline)")
	verbose := flag.Bool("v", false, "print per-invariant results and VCG details")
	stats := flag.Bool("stats", false, "print a per-invariant execution profile (elapsed, rows scanned, join strategies, morsels) sorted by elapsed")
	incremental := flag.Bool("incremental", false, "edit-check loop: read DML statements from stdin and re-verify only the invariants the edit can touch")
	traceFlag := flag.Bool("trace", false, "collect spans (phases, solves, statements) and dump them as JSON lines to stderr at exit")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style metrics to stdout at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	workers := flag.Int("workers", 0, "bound parallelism in generation, checking and deadlock analysis (0 = GOMAXPROCS)")
	segmented := flag.Bool("segmented", false, "with -modelcheck: use the out-of-core engine (compressed segment store, sharded visited index, parallel frontier)")
	maxMem := flag.String("max-mem", "", "with -modelcheck: memory budget, e.g. 256M; implies -segmented, spills to -spill-dir or stops at the budget")
	spillDir := flag.String("spill-dir", "", "with -modelcheck: directory for spilled state segments")
	baselineCache := flag.String("baseline-cache", "", "with -incremental: cache file for the passing baseline, keyed by a hash of the specs and table contents; a fresh process with a matching hash skips the baseline run")
	flag.Parse()

	if *messages {
		fmt.Print(protocol.Figure1Table().String())
		return
	}

	diag, err := core.StartDiag(core.DiagConfig{
		Trace: *traceFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if err != nil {
		fail(err)
	}
	tr, reg := diag.Tracer, diag.Registry
	flush := diag.Close

	p := core.New()
	p.SetWorkers(*workers)
	diag.Attach(p)
	if err := p.Generate(); err != nil {
		fail(err)
	}
	if *mc {
		if err := runModelCheck(p, *assign, *segmented, *maxMem, *spillDir); err != nil {
			fail(err)
		}
		flush()
		return
	}
	if *incremental {
		if err := runIncremental(p, *workers, tr, reg, *stats, *baselineCache); err != nil {
			fail(err)
		}
		flush()
		return
	}
	runAll := !*invariants && !*deadlocks

	if *invariants || runAll {
		results := check.ProtocolSuite().Run(p.DB, check.Options{Workers: *workers, Tracer: tr, Metrics: reg})
		sum := check.Summarize(results)
		fmt.Println(sum)
		for _, r := range results {
			if *verbose || !r.Passed() {
				status := "ok"
				if r.Err != nil {
					status = "ERROR: " + r.Err.Error()
				} else if !r.Passed() {
					status = fmt.Sprintf("VIOLATED (%d rows)", r.Violations.NumRows())
				}
				fmt.Printf("  %-28s %-9s %s\n", r.Invariant.Name, r.Invariant.Ref, status)
			}
		}
		if *stats {
			printInvariantStats(results)
		}
		if sum.Failed > 0 || sum.Errors > 0 {
			flush()
			os.Exit(1)
		}
	}

	if *deadlocks || runAll {
		tables, err := p.ControllerTables()
		if err != nil {
			fail(err)
		}
		order := protocol.AssignmentNames()
		if *assign != "" {
			order = []string{*assign}
		}
		for _, name := range order {
			v, err := protocol.BuildAssignment(name)
			if err != nil {
				fail(err)
			}
			if *repair {
				res, err := deadlock.Repair(tables, v, deadlock.DefaultOptions(), 64)
				if err != nil {
					fail(err)
				}
				fmt.Printf("== repairing %s: converged=%v after %d action(s)\n",
					name, res.Converged, len(res.Actions))
				for _, a := range res.Actions {
					fmt.Printf("   %s\n", a)
				}
				continue
			}
			dopts := deadlock.DefaultOptions()
			dopts.Workers = *workers
			dopts.Label = name
			dopts.Tracer = tr
			dopts.Metrics = reg
			rep, err := deadlock.Analyze(tables, v, dopts)
			if err != nil {
				fail(err)
			}
			fmt.Printf("== %s: %d dependency rows, %d edges, %d cycle(s) (%v)\n",
				name, rep.Stats.ProtocolRows, len(rep.Graph.Edges()), len(rep.Cycles),
				rep.Stats.Elapsed.Round(1000))
			for _, c := range rep.Cycles {
				fmt.Printf("   cycle %s\n", c)
				if *verbose {
					for _, ev := range rep.Graph.CycleEvidence(c) {
						fmt.Printf("     via %s\n", ev)
					}
				}
			}
		}
	}
	flush()
}

// runIncremental is the delta-driven edit-check loop: a full invariant run
// establishes the baseline, then every DML statement read from stdin
// commits a revision and re-verifies only the invariants whose input
// tables the revision touched — the rest carry over as skipped.
func runIncremental(p *core.Pipeline, workers int, tr obs.Tracer, reg *obs.Registry, stats bool, cachePath string) error {
	suite := check.ProtocolSuite()
	opts := check.Options{Workers: workers, Tracer: tr, Metrics: reg}
	rev := p.DB.BeginRevision()
	t0 := time.Now()
	var prev []check.Result
	if cachePath != "" {
		if loaded, ok := check.LoadBaseline(cachePath, p.DB, suite); ok {
			// Run the cached baseline through an empty delta: analyzable
			// invariants carry over as skipped, the rest re-check.
			prev = suite.RunDelta(p.DB, loaded, rev.Commit(), opts)
			skipped := 0
			for _, r := range prev {
				if r.Skipped {
					skipped++
				}
			}
			fmt.Printf("baseline: cached, %d/%d skipped: %s (%v)\n",
				skipped, len(prev), check.Summarize(prev), time.Since(t0).Round(time.Microsecond))
		}
	}
	if prev == nil {
		prev = suite.Run(p.DB, opts)
		fmt.Printf("baseline: %s (%v)\n", check.Summarize(prev), time.Since(t0).Round(time.Microsecond))
		if cachePath != "" {
			if err := check.SaveBaseline(cachePath, p.DB, suite, prev); err != nil {
				fmt.Fprintln(os.Stderr, "baseline cache not written:", err)
			}
		}
	}
	fmt.Println("incremental mode: one DML statement per line (INSERT/UPDATE/DELETE), Ctrl-D to finish")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if _, err := p.DB.Exec(line); err != nil {
			fmt.Println("error:", err)
			continue
		}
		t0 := time.Now()
		d := rev.Commit()
		prev = suite.RunDelta(p.DB, prev, d, opts)
		skipped, rechecked := 0, 0
		for _, r := range prev {
			if r.Skipped {
				skipped++
			} else {
				rechecked++
			}
		}
		fmt.Printf("delta %s: %d rechecked, %d skipped in %v; %s\n",
			d, rechecked, skipped, time.Since(t0).Round(time.Microsecond), check.Summarize(prev))
		for _, r := range prev {
			if !r.Passed() && !r.Skipped {
				status := "VIOLATED"
				if r.Err != nil {
					status = "ERROR: " + r.Err.Error()
				} else {
					status = fmt.Sprintf("VIOLATED (%d rows)", r.Violations.NumRows())
				}
				fmt.Printf("  %-28s %-9s %s\n", r.Invariant.Name, r.Invariant.Ref, status)
			}
		}
		if stats {
			printInvariantStats(prev)
		}
	}
	return sc.Err()
}

// runModelCheck explores the Fig. 4 configuration exhaustively under the
// given assignment (default: both vc4 and fixed) — the baseline the paper
// contrasts the SQL analysis with.
func runModelCheck(p *core.Pipeline, assign string, segmented bool, maxMem, spillDir string) error {
	mcOpts := modelcheck.Options{MaxStates: 2000000, CheckCoherence: true}
	if maxMem != "" {
		budget, err := segment.ParseBytes(maxMem)
		if err != nil {
			return err
		}
		mcOpts.MemBudget = budget
		segmented = true
	}
	if segmented {
		mcOpts.Segmented = true
		mcOpts.SpillDir = spillDir
		mcOpts.HashStates = true
	}
	tables := sim.Tables{
		D: p.DB.MustTable(protocol.DirectoryTable),
		M: p.DB.MustTable(protocol.MemoryTable),
		C: p.DB.MustTable(protocol.CacheTable),
		N: p.DB.MustTable(protocol.NodeTable),
	}
	names := []string{protocol.AssignVC4, protocol.AssignFixed}
	if assign != "" {
		names = []string{assign}
	}
	for _, name := range names {
		v, err := protocol.BuildAssignment(name)
		if err != nil {
			return err
		}
		sys, err := sim.NewSystem(sim.Config{
			Nodes: 2, ChannelCap: 1,
			ChannelCaps: map[string]int{"VC0": 2},
			Tables:      tables.Map(),
			Assignment:  v,
			MaxSteps:    100000,
		})
		if err != nil {
			return err
		}
		sys.Node(0).SetCache(0xB, protocol.CacheM)
		sys.Dir().SetOwner(0xB, sim.NodeID(0))
		sys.Node(1).SetCache(0xA, protocol.CacheM)
		sys.Dir().SetOwner(0xA, sim.NodeID(1))
		sys.Node(0).Script(
			sim.Op{Kind: "previct", Addr: 0xB},
			sim.Op{Kind: "prwrite", Addr: 0xA},
		)
		sys.Node(1).Script(sim.Op{Kind: "previct", Addr: 0xA})
		rep, err := modelcheck.Explore(sys, mcOpts)
		if err != nil {
			return err
		}
		fmt.Printf("== model checking %s: %d states, %d edges, depth %d (%v)\n",
			name, rep.States, rep.Edges, rep.Depth, rep.Elapsed.Round(1000))
		if mcOpts.Segmented {
			m := rep.Mem
			fmt.Printf("   memory: %dB/state (%dB resident, %dB spilled in %d/%d segments; index %dB, dict %dB, frontier %dB; %d spills, %d faults, %d replays)\n",
				m.BytesPerState, m.ResidentBytes, m.SpilledBytes,
				m.SpilledSegments, m.Segments, m.IndexBytes, m.DictBytes, m.FrontierBytes,
				m.Spills, m.Faults, m.Replays)
			fmt.Printf("   reachable-set hash: %016x\n", rep.StateHash)
		}
		if rep.Violation != nil {
			fmt.Printf("   %s found; counter-example (%d actions):\n", rep.Violation.Kind, len(rep.Violation.Trace))
			for _, a := range rep.Violation.Trace {
				fmt.Printf("     %s\n", a)
			}
		} else {
			fmt.Println("   no violation: deadlock free and coherent in every reachable state")
		}
	}
	return nil
}

// printInvariantStats renders the per-invariant execution profile, most
// expensive query first: where the suite's time goes, which queries scan
// the most rows and which strategies (hash / index / loop joins, index
// scans, morsel parallelism) the executor picked for each.
func printInvariantStats(results []check.Result) {
	sorted := append([]check.Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Elapsed > sorted[j].Elapsed })
	fmt.Printf("  %-28s %-7s %9s %8s %8s %6s %6s %6s %7s\n",
		"invariant", "exec", "elapsed", "scanned", "rows", "hashj", "idxj", "loopj", "morsels")
	for _, r := range sorted {
		st := r.Stats
		exec := "run"
		if r.Skipped {
			exec = "skipped"
		}
		fmt.Printf("  %-28s %-7s %9s %8d %8d %6d %6d %6d %7d\n",
			r.Invariant.Name, exec, r.Elapsed.Round(time.Microsecond),
			st.RowsScanned, st.RowsProduced,
			st.HashJoins, st.IndexJoins, st.LoopJoins, st.Morsels)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohercheck:", err)
	os.Exit(1)
}
