// Command cohersim executes the generated controller tables in the
// discrete-event simulator: scenario replays (including the Fig. 4
// deadlock) and random workload fuzzing.
//
// Usage:
//
//	cohersim -scenario fig4 -assign vc4     # replay the published deadlock
//	cohersim -scenario fig4 -assign fixed   # verify the fix dynamically
//	cohersim -random -seed 7 -nodes 4       # fuzz with a random workload
package main

import (
	"flag"
	"fmt"
	"os"

	"coherdb/internal/core"
	"coherdb/internal/hwmap"
	"coherdb/internal/protocol"
	"coherdb/internal/segment"
	"coherdb/internal/sim"
)

func main() {
	scenario := flag.String("scenario", "", "scenario to replay: readex or fig4")
	assign := flag.String("assign", protocol.AssignFixed, "channel assignment: initial4, vc4, fixed")
	random := flag.Bool("random", false, "run a random workload")
	seed := flag.Int64("seed", 1, "random workload seed")
	nodes := flag.Int("nodes", 4, "random workload node count")
	ops := flag.Int("ops", 25, "random workload ops per node")
	impl := flag.Bool("impl", false, "run the directory as the Figure 5 implementation (nine tables + queues + feedback)")
	trace := flag.Bool("trace", false, "print the event trace")
	maxMem := flag.String("max-mem", "", "cap resident bytes of the accumulated event trace, e.g. 64M; cold trace blocks seal into compressed segments and spill to -spill-dir")
	spillDir := flag.String("spill-dir", "", "directory for spilled trace segments (with -max-mem; default: keep sealed segments resident)")
	chart := flag.Bool("chart", false, "print the message sequence chart of the scenario's line (Fig. 2 style)")
	metricsFlag := flag.Bool("metrics", false, "write Prometheus-style metrics to stdout at exit")
	spansFlag := flag.Bool("spans", false, "collect generation/solver spans and dump them as JSON lines to stderr at exit")
	listen := flag.String("listen", "", "serve live diagnostics (metrics, healthz, pprof, traces, queries) on this address, e.g. :8080")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable) to this file at exit")
	flag.Parse()

	diag, derr := core.StartDiag(core.DiagConfig{
		Trace: *spansFlag, Metrics: *metricsFlag,
		Listen: *listen, TraceOut: *traceOut,
	})
	if derr != nil {
		fail(derr)
	}
	defer diag.Close()

	p := core.New()
	diag.Attach(p)
	if err := p.Generate(); err != nil {
		fail(err)
	}
	var mapping *hwmap.Mapping
	if *impl {
		if err := p.MapToHardware(); err != nil {
			fail(err)
		}
		mapping = p.Report.Mapping
	}
	tables := sim.Tables{
		D: p.DB.MustTable(protocol.DirectoryTable),
		M: p.DB.MustTable(protocol.MemoryTable),
		C: p.DB.MustTable(protocol.CacheTable),
		N: p.DB.MustTable(protocol.NodeTable),
	}

	var res *sim.Result
	var sys *sim.System
	var err error
	switch {
	case *random:
		v, err2 := protocol.BuildAssignment(*assign)
		if err2 != nil {
			fail(err2)
		}
		if mapping != nil {
			sys, err = sim.NewSystem(sim.Config{
				Nodes: *nodes, ChannelCap: 16, Tables: tables.Map(),
				Assignment: v, Mapping: mapping, MaxSteps: 400000,
			})
			if err != nil {
				fail(err)
			}
			seedSys, err2 := sim.RandomSystem(tables, v, sim.RandomConfig{
				Nodes: *nodes, OpsPerNode: *ops, Seed: *seed, DirectOps: true,
			})
			if err2 != nil {
				fail(err2)
			}
			sim.CopyScripts(seedSys, sys)
		} else {
			sys, err = sim.RandomSystem(tables, v, sim.RandomConfig{
				Nodes: *nodes, OpsPerNode: *ops, Seed: *seed, DirectOps: true,
			})
			if err != nil {
				fail(err)
			}
		}
	case *scenario != "":
		v, err2 := protocol.BuildAssignment(*assign)
		if err2 != nil {
			fail(err2)
		}
		switch *scenario {
		case "readex":
			sys, err = sim.ReadExSystem(tables, v, 3)
		case "fig4":
			sys, err = sim.Figure4System(tables, v)
		default:
			fail(fmt.Errorf("unknown scenario %q (have %v)", *scenario, sim.ScenarioNames()))
		}
		if err != nil {
			fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "pick -scenario (%v) or -random\n", sim.ScenarioNames())
		os.Exit(2)
	}
	var traceBudget int64
	if *maxMem != "" {
		traceBudget, err = segment.ParseBytes(*maxMem)
		if err != nil {
			fail(err)
		}
		sys.SetTraceBudget(traceBudget, *spillDir)
	}
	defer sys.Close()
	res, err = sys.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("outcome: %s after %d steps (%d messages delivered, %d ops completed, %d retries)\n",
		res.Outcome, res.Stats.Steps, res.Stats.Delivered, res.Stats.OpsCompleted, res.Stats.Retries)
	if res.Stats.OpsCompleted > 0 {
		fmt.Printf("latency: avg %.1f steps, max %d steps per remote transaction\n",
			res.Stats.AvgOpLatency(), res.Stats.OpLatencyMax)
	}
	if res.Outcome == sim.Deadlocked {
		fmt.Printf("blocked channels:\n%s", res.Blockage)
	}
	if sys != nil && res.Outcome == sim.Completed {
		if v := sys.CheckCoherence(); len(v) > 0 {
			fmt.Printf("COHERENCE VIOLATIONS: %v\n", v)
			diag.Close()
			os.Exit(1)
		}
		fmt.Println("final state coherent")
	}
	if *trace {
		// Under a trace budget the corpus is streamed from the segment
		// store (possibly from disk) instead of materialized in Result.
		sys.StreamTrace(func(line string) bool {
			fmt.Println(line)
			return true
		})
	}
	if traceBudget > 0 {
		ts := sys.TraceStats()
		fmt.Printf("trace store: %d lines in %d segments, %dB resident, %dB spilled (%d spills, %d faults)\n",
			ts.Rows, ts.Segments, ts.ResidentBytes, ts.SpilledBytes, ts.Spills, ts.Faults)
	}
	if *chart && sys != nil {
		addr := sim.Addr(0x100) // readex scenario line
		if *scenario == "fig4" {
			addr = 0xA
		}
		fmt.Print(sys.SequenceChart(addr))
	}
	if res.Outcome == sim.Deadlocked {
		diag.Close()
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cohersim:", err)
	os.Exit(1)
}
