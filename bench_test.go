// The benchmark harness: one benchmark per table, figure and quantitative
// claim of the paper (see the experiment index in DESIGN.md and the
// measured results in EXPERIMENTS.md).
//
// Run with: go test -bench=. -benchmem
package coherdb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"coherdb/internal/check"
	"coherdb/internal/constraint"
	"coherdb/internal/core"
	"coherdb/internal/deadlock"
	"coherdb/internal/hwmap"
	"coherdb/internal/modelcheck"
	"coherdb/internal/obs"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sim"
	"coherdb/internal/sqlmini"
)

// Shared generated state, built once per benchmark binary run.
var (
	setupOnce sync.Once
	setupPipe *core.Pipeline
	setupErr  error
)

func pipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	setupOnce.Do(func() {
		p := core.New()
		if err := p.Generate(); err != nil {
			setupErr = err
			return
		}
		setupPipe = p
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setupPipe
}

func simTables(b *testing.B) sim.Tables {
	p := pipeline(b)
	return sim.Tables{
		D: p.DB.MustTable(protocol.DirectoryTable),
		M: p.DB.MustTable(protocol.MemoryTable),
		C: p.DB.MustTable(protocol.CacheTable),
		N: p.DB.MustTable(protocol.NodeTable),
	}
}

// --- C1: incremental vs monolithic table generation (§3) -----------------
// The paper: incremental generation finishes "within a few minutes" while
// solving the full conjunction takes "around 6 hours". The sweep widens the
// Fig. 3 fragment one output column at a time: monolithic cost multiplies
// by the domain size per column while incremental cost stays proportional
// to the (constant-sized) result.

func BenchmarkGenerateIncremental(b *testing.B) {
	for _, scale := range []int{1, 2, 3, 4} {
		spec, err := protocol.Figure3FragmentSpec(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cols=%d/space=%d", len(spec.ColumnNames()), spec.SpaceSize()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := constraint.Solve(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGenerateMonolithic(b *testing.B) {
	for _, scale := range []int{1, 2, 3, 4} {
		spec, err := protocol.Figure3FragmentSpec(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cols=%d/space=%d", len(spec.ColumnNames()), spec.SpaceSize()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := constraint.MonolithicOpts(spec, constraint.Options{MonolithicLimit: 1 << 30}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C2: generating the full directory table D (30 cols, ~500 rows) ------

func BenchmarkGenerateDirectoryD(b *testing.B) {
	spec, err := protocol.BuildDirectorySpec()
	if err != nil {
		b.Fatal(err)
	}
	// One untimed solve populates the spec's compiled-kernel cache, so the
	// loop measures steady-state generation; the one-off lowering cost is
	// reported separately as Stats.CompileTime.
	if _, _, err := constraint.Solve(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, _, err := constraint.Solve(spec)
		if err != nil {
			b.Fatal(err)
		}
		if tab.NumCols() != 30 {
			b.Fatal("wrong shape")
		}
	}
}

// --- C2 kernel: compiled vs interpreted constraint evaluation -------------
// The solver's hot loop evaluates one column constraint per candidate row.
// This pins the per-evaluation gap between the tree-walking interpreter
// (name resolution through a MapEnv, operator dispatch on strings) and the
// compiled kernel (position-bound closures) on a real directory-table
// rule chain.

func BenchmarkConstraintKernel(b *testing.B) {
	spec, err := protocol.BuildDirectorySpec()
	if err != nil {
		b.Fatal(err)
	}
	e := spec.Constraint("locmsg")
	if e == nil {
		b.Fatal("locmsg constraint missing")
	}
	ev := spec.Evaluator()
	cols := spec.Columns()
	row := make([]rel.Value, len(cols))
	env := make(sqlmini.MapEnv, len(cols))
	for i, c := range cols {
		d := c.Domain()
		row[i] = d[len(d)-1]
		env[c.Name] = row[i]
	}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.True(e, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		pred, err := ev.Compile(e, spec.ColumnIndex())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pred(row); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C6: generating all eight controller tables --------------------------

func BenchmarkGenerateAllControllers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := sqlmini.NewDB()
		if _, err := protocol.GenerateAll(db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C3: the ~50-invariant static suite (§4.3) ---------------------------
// The paper: "All of the protocol invariants (around 50) are checked on a
// SUN Sparc 10 within 5 minutes."
//
// Measured speedup (PR 4): 7.30 ms/op at the BENCH_3.json baseline to
// 2.32 ms/op — 3.1x, beating the ≥2x acceptance target. The single-CPU
// CI host runs parallel and serial dispatch at the same speed (the pool
// degrades to inline execution), so the whole gain is single-thread work:
// plan-bound compiled predicates replacing the tree-walking interpreter,
// arena-backed projection, and the grouped fast path. On a multi-core
// host the suite additionally fans out: independent invariants are dealt
// one at a time to the shared work-stealing pool (see check.Suite.Run).

func BenchmarkInvariantSuite(b *testing.B) {
	p := pipeline(b)
	suite := check.ProtocolSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := suite.Run(p.DB, check.Options{})
		if check.Summarize(results).Failed != 0 {
			b.Fatal("invariants failed")
		}
	}
}

func BenchmarkInvariantSuiteSerial(b *testing.B) {
	p := pipeline(b)
	suite := check.ProtocolSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.Run(p.DB, check.Options{Workers: 1})
	}
}

// --- O1: observability overhead on the invariant suite --------------------
// The instrumentation contract: with a nil Tracer every span helper no-ops,
// so BenchmarkInvariantSuite above doubles as the "tracing off" baseline
// (its numbers stay comparable across revisions). This variant runs the
// same suite with a live collector and metrics registry to bound the cost
// of switching observability on.

func BenchmarkInvariantSuiteObserved(b *testing.B) {
	p := pipeline(b)
	suite := check.ProtocolSuite()
	col := obs.NewCollector(0)
	reg := obs.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := suite.Run(p.DB, check.Options{Tracer: col, Metrics: reg})
		if check.Summarize(results).Failed != 0 {
			b.Fatal("invariants failed")
		}
	}
}

// --- O2: EXPLAIN ANALYZE cost over the plain statement --------------------
// ANALYZE re-executes the statement with per-operator counters and clocks
// attached (see sqlmini/analyze.go); the pair below prices that against the
// uninstrumented run of the same join. The off path is protected separately:
// every az hook starts with a nil check, so plain statements never pay for
// the instrumentation (TestNilTracerOverheadBound bounds the same discipline
// on the tracer side).

func BenchmarkExplainAnalyzeOverhead(b *testing.B) {
	p := pipeline(b)
	v, err := protocol.BuildAssignment(protocol.AssignVC4)
	if err != nil {
		b.Fatal(err)
	}
	p.DB.DropTable("V")
	p.DB.PutTable(v)
	const stmt = `SELECT D.inmsg, V.v FROM D JOIN V ON D.inmsg = V.m`
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.DB.Query(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.DB.Query("EXPLAIN ANALYZE " + stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestNilTracerOverheadBound checks the <5% acceptance bound directly: the
// per-invariant instrumentation with a nil tracer (one child span, a few
// attrs, a finish) must cost under 5% of an average invariant query, so the
// hooks are free when observability is off.
func TestNilTracerOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based bound")
	}
	p := core.New()
	if err := p.Generate(); err != nil {
		t.Fatal(err)
	}
	suite := check.ProtocolSuite()
	n := suite.Len()
	suiteRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			suite.Run(p.DB, check.Options{})
		}
	})
	hookRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The exact nil-tracer call sequence check.Run performs per
			// invariant.
			root := obs.StartSpan(nil, "check.suite", obs.Int("invariants", n))
			sp := root.Child("check.invariant", obs.String("invariant", "x"))
			sp.SetAttr(obs.Int("violations", 0))
			sp.Finish()
			root.Finish()
		}
	})
	perInvariant := float64(suiteRes.NsPerOp()) / float64(n)
	hooks := float64(hookRes.NsPerOp())
	if ratio := hooks / perInvariant; ratio > 0.05 {
		t.Fatalf("nil-tracer hooks cost %.2f%% of an invariant query (%.0fns vs %.0fns), want < 5%%",
			100*ratio, hooks, perInvariant)
	}
}

// --- C4/F4: VCG construction and cycle detection (§4.1-4.2) --------------

func BenchmarkVCGConstruction(b *testing.B) {
	p := pipeline(b)
	tables, err := p.ControllerTables()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range protocol.AssignmentNames() {
		v, err := protocol.BuildAssignment(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := deadlock.Analyze(tables, v, deadlock.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1: pairwise composition vs the abandoned transitive closure --------

func BenchmarkPairwiseVsClosure(b *testing.B) {
	p := pipeline(b)
	tables, err := p.ControllerTables()
	if err != nil {
		b.Fatal(err)
	}
	v, err := protocol.BuildAssignment(protocol.AssignVC4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := deadlock.Analyze(tables, v, deadlock.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("closure", func(b *testing.B) {
		opts := deadlock.DefaultOptions()
		opts.Closure = true
		for i := 0; i < b.N; i++ {
			if _, err := deadlock.Analyze(tables, v, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A2: quad placements on/off ------------------------------------------

func BenchmarkPlacementAblation(b *testing.B) {
	p := pipeline(b)
	tables, err := p.ControllerTables()
	if err != nil {
		b.Fatal(err)
	}
	v, err := protocol.BuildAssignment(protocol.AssignVC4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-placements", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := deadlock.Analyze(tables, v, deadlock.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-placements", func(b *testing.B) {
		opts := deadlock.DefaultOptions()
		opts.NoPlacements = true
		for i := 0; i < b.N; i++ {
			if _, err := deadlock.Analyze(tables, v, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C5/F5: hardware mapping and reconstruction (§5) ----------------------

func BenchmarkMapAndReconstruct(b *testing.B) {
	p := pipeline(b)
	d := p.DB.MustTable(protocol.DirectoryTable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := sqlmini.NewDB()
		m, err := hwmap.Partition(db, d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A3: explicit-state model checking vs SQL static analysis ------------
// The paper (§4.2): model checkers can find such deadlocks but hit state
// explosion. The same Fig. 4 configuration is checked both ways; the SQL
// analysis cost is independent of the workload while BFS states multiply.

func BenchmarkModelCheckVsSQL(b *testing.B) {
	p := pipeline(b)
	tables, err := p.ControllerTables()
	if err != nil {
		b.Fatal(err)
	}
	st := simTables(b)
	v4table, err := protocol.BuildAssignment(protocol.AssignVC4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sql-vcg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := deadlock.Analyze(tables, v4table, deadlock.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Deadlocked() {
				b.Fatal("deadlock missed")
			}
		}
	})
	// Finding the known deadlock: BFS stops at the first counter-example.
	b.Run("modelcheck/find-deadlock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := figure4ModelSystem(st, v4table)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := modelcheck.Explore(sys, modelcheck.Options{MaxStates: 2000000})
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Deadlocked() {
				b.Fatal("deadlock missed")
			}
			b.ReportMetric(float64(rep.States), "states")
		}
	})
	// Verifying deadlock freedom: the state space must be exhausted, and
	// it multiplies with every added operation — the state explosion the
	// paper's SQL method sidesteps (its cost is workload independent).
	fixedTable, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		b.Fatal(err)
	}
	for _, extraOps := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("modelcheck/verify/extra-ops=%d", extraOps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := figure4ModelSystem(st, fixedTable)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < extraOps; k++ {
					sys.Node(k % 2).Script(sim.Op{Kind: "prread", Addr: sim.Addr(0x100 + k)})
				}
				rep, err := modelcheck.Explore(sys, modelcheck.Options{MaxStates: 5000000})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Violation != nil {
					b.Fatal("unexpected violation")
				}
				b.ReportMetric(float64(rep.States), "states")
			}
		})
	}
}

// figure4ModelSystem builds the Fig. 4 initial state for model checking
// (no choreography: all interleavings are explored).
func figure4ModelSystem(st sim.Tables, v *rel.Table) (*sim.System, error) {
	sys, err := sim.NewSystem(sim.Config{
		Nodes: 2, ChannelCap: 1,
		ChannelCaps: map[string]int{"VC0": 2},
		Tables:      st.Map(),
		Assignment:  v,
		MaxSteps:    100000,
	})
	if err != nil {
		return nil, err
	}
	sys.Node(0).SetCache(0xB, protocol.CacheM)
	sys.Dir().SetOwner(0xB, sim.NodeID(0))
	sys.Node(1).SetCache(0xA, protocol.CacheM)
	sys.Dir().SetOwner(0xA, sim.NodeID(1))
	sys.Node(0).Script(
		sim.Op{Kind: "previct", Addr: 0xB},
		sim.Op{Kind: "prwrite", Addr: 0xA},
	)
	sys.Node(1).Script(sim.Op{Kind: "previct", Addr: 0xA})
	return sys, nil
}

// --- A4: static checking vs random simulation on a seeded bug ------------

func BenchmarkRandomVsStatic(b *testing.B) {
	p := pipeline(b)
	d := p.DB.MustTable(protocol.DirectoryTable)
	bad := d.Clone()
	for i := 0; i < bad.NumRows(); i++ {
		if bad.Get(i, "locmsg").Equal(rel.S("upgack")) {
			if err := bad.Set(i, "nxtdirpv", rel.S(protocol.PVInc)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("static-suite", func(b *testing.B) {
		db := sqlmini.NewDB()
		protocol.RegisterFuncs(db.Register)
		for _, name := range p.DB.Names() {
			db.PutTable(p.DB.MustTable(name))
		}
		db.PutTable(bad)
		suite := check.ProtocolSuite()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := suite.Run(db, check.Options{})
			if check.Summarize(results).Failed == 0 {
				b.Fatal("seeded bug missed")
			}
		}
	})
	b.Run("random-trial", func(b *testing.B) {
		tabs := simTables(b)
		v, err := protocol.BuildAssignment(protocol.AssignFixed)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sys, err := sim.RandomSystem(tabs, v, sim.RandomConfig{
				Nodes: 3, Addrs: 2, OpsPerNode: 10, Seed: int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- F2: simulator throughput on the readex flow --------------------------

func BenchmarkSimulatorReadEx(b *testing.B) {
	st := simTables(b)
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := sim.ReadExSystem(st, v, 3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != sim.Completed {
			b.Fatal("readex flow failed")
		}
	}
}

// --- F4: the Fig. 4 scenario, frozen and fixed -----------------------------

func BenchmarkFigure4Replay(b *testing.B) {
	st := simTables(b)
	for _, cfg := range []struct {
		name    string
		assign  string
		outcome sim.Outcome
	}{
		{"vc4-deadlocks", protocol.AssignVC4, sim.Deadlocked},
		{"fixed-completes", protocol.AssignFixed, sim.Completed},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.RunFigure4(st, cfg.assign)
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != cfg.outcome {
					b.Fatalf("outcome = %v", res.Outcome)
				}
			}
		})
	}
}

// --- A5: ablation — the dontcare (NULL) representation (§3) ---------------
// "The NULL value allows a controller table entry to be specified only
// using the relevant values and helps in optimal mapping."

func BenchmarkExpandDontcares(b *testing.B) {
	p := pipeline(b)
	d := p.DB.MustTable(protocol.DirectoryTable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := hwmap.ExpandDontcares(d)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(exp.NumRows())/float64(d.NumRows()), "blowup")
	}
}

// --- C5 dynamic: spec engine vs the Figure 5 implementation engine --------

func BenchmarkSpecVsImplEngine(b *testing.B) {
	p := pipeline(b)
	if p.Report.Mapping == nil {
		if err := p.MapToHardware(); err != nil {
			b.Fatal(err)
		}
	}
	st := simTables(b)
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mapping bool) {
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{
				Nodes: 3, ChannelCap: 16, Tables: st.Map(),
				Assignment: v, MaxSteps: 200000,
			}
			if mapping {
				cfg.Mapping = p.Report.Mapping
			}
			sys, err := sim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			seedSys, err := sim.RandomSystem(st, v, sim.RandomConfig{
				Nodes: 3, Addrs: 3, OpsPerNode: 20, Seed: int64(i + 1), DirectOps: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim.CopyScripts(seedSys, sys)
			res, err := sys.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome != sim.Completed {
				b.Fatal("workload did not complete")
			}
		}
	}
	b.Run("spec-table", func(b *testing.B) { run(b, false) })
	b.Run("fig5-implementation", func(b *testing.B) { run(b, true) })
}

// --- simulator scaling: throughput vs node count ---------------------------

func BenchmarkSimulatorScaling(b *testing.B) {
	st := simTables(b)
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			totalOps := 0
			for i := 0; i < b.N; i++ {
				sys, err := sim.RandomSystem(st, v, sim.RandomConfig{
					Nodes: nodes, Addrs: 4, OpsPerNode: 20, Seed: int64(i + 1), DirectOps: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != sim.Completed {
					b.Fatal("workload did not complete")
				}
				totalOps += res.Stats.OpsCompleted
				b.ReportMetric(res.Stats.AvgOpLatency(), "steps/op")
			}
			b.ReportMetric(float64(totalOps)/float64(b.N), "ops/run")
		})
	}
}

// --- X1: out-of-core state exploration (ISSUE 9) --------------------------

// BenchmarkStateExplore measures how many states each engine reaches at a
// FIXED memory budget, plus throughput (states/s) and footprint
// (bytes/state). The in-memory engine retains a full System clone and
// fingerprint string per state (~KBs) and hits ErrBudget within a few
// hundred states; the segmented engine keeps compressed code tuples
// (~tens of bytes incl. index) and, with a spill directory, holds its
// residency under the same budget indefinitely — the x_vs_inmem metric
// records the ≥100x headroom.
func BenchmarkStateExplore(b *testing.B) {
	st := simTables(b)
	fixedTable, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		b.Fatal(err)
	}
	build := func() *sim.System {
		sys, err := figure4ModelSystem(st, fixedTable)
		if err != nil {
			b.Fatal(err)
		}
		// Widen the state space past the spilled engine's state cap.
		for k := 0; k < 4; k++ {
			sys.Node(k % 2).Script(sim.Op{Kind: "prread", Addr: sim.Addr(0x100 + k)})
		}
		return sys
	}
	const budget = 1 << 20 // 1 MiB for every engine
	var inmemStates, spilledStates int

	run := func(name string, opts modelcheck.Options, out *int) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := modelcheck.Explore(build(), opts)
				if err != nil && !errors.Is(err, modelcheck.ErrBudget) && !errors.Is(err, modelcheck.ErrLimit) {
					b.Fatal(err)
				}
				*out = rep.States
				b.ReportMetric(float64(rep.States), "states")
				b.ReportMetric(float64(rep.Mem.BytesPerState), "bytes/state")
				if s := rep.Elapsed.Seconds(); s > 0 {
					b.ReportMetric(float64(rep.States)/s, "states/s")
				}
			}
		})
	}

	run("in-memory", modelcheck.Options{
		MaxStates: 2000000, CheckCoherence: true, MemBudget: budget,
	}, &inmemStates)
	var segStates int
	run("segmented", modelcheck.Options{
		MaxStates: 2000000, CheckCoherence: true, MemBudget: budget,
		Segmented: true, HashStates: true,
	}, &segStates)
	run("spilled", modelcheck.Options{
		MaxStates: 150000, CheckCoherence: true, MemBudget: budget,
		Segmented: true, HashStates: true, SpillDir: b.TempDir(),
	}, &spilledStates)

	if inmemStates > 0 && spilledStates > 0 {
		ratio := float64(spilledStates) / float64(inmemStates)
		b.Logf("states at %dB budget: in-memory=%d spilled-segmented=%d (%.0fx)",
			budget, inmemStates, spilledStates, ratio)
		if ratio < 100 {
			b.Errorf("spilled/in-memory state ratio %.1fx below the 100x floor", ratio)
		}
	}
}

// --- substrate microbenchmarks --------------------------------------------

// Allocation regression gate: PR 3 measured 1,228 allocs/op here; the
// morsel executor's compiled pushdown filters and arena-carved projection
// rows brought it to 46 allocs/op. ReportAllocs keeps the number visible
// on every run — treat a climb back into the hundreds as a regression.
func BenchmarkSQLSelectWhere(b *testing.B) {
	p := pipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DB.Query(`SELECT inmsg, bdirst FROM D WHERE locmsg = 'retry'`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorizedFilter pins the scalar-vs-vectorized gap on a
// pushdown filter scan: the same non-indexable predicate over table D,
// evaluated row-at-a-time by the compiled closure kernel and
// column-at-a-time by the selection-vector kernel. The pair is what
// bench.sh records so a regression in either path is visible on its own.
func BenchmarkVectorizedFilter(b *testing.B) {
	p := pipeline(b)
	const q = `SELECT inmsg, dirst FROM D WHERE inmsg <> 'readex' AND locmsg IS NOT NULL`
	defer p.DB.SetVectorized(true)
	for _, bench := range []struct {
		name string
		vec  bool
	}{{"scalar", false}, {"vectorized", true}} {
		b.Run(bench.name, func(b *testing.B) {
			p.DB.SetVectorized(bench.vec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.DB.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLPreparedSelect is the plan-cache fast path in isolation: the
// statement is parsed and planned once, and every iteration re-executes the
// prepared handle — the per-execution floor for an indexed point query.
func BenchmarkSQLPreparedSelect(b *testing.B) {
	p := pipeline(b)
	stmt, err := p.DB.Prepare(`SELECT inmsg, bdirst FROM D WHERE locmsg = 'retry'`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Query(); err != nil {
			b.Fatal(err)
		}
	}
}

// Allocation regression gate: PR 3 measured 3,070 allocs/op; the hash
// join's bucket-pointer table, allocation-free string(key) probes, and
// flat joined-row arena brought it to 831 allocs/op.
func BenchmarkSQLJoin(b *testing.B) {
	p := pipeline(b)
	b.ReportAllocs()
	v, err := protocol.BuildAssignment(protocol.AssignVC4)
	if err != nil {
		b.Fatal(err)
	}
	p.DB.DropTable("V")
	p.DB.PutTable(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DB.Query(`SELECT D.inmsg, V.v FROM D JOIN V ON D.inmsg = V.m`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- D1: delta-driven incremental re-checking -----------------------------
// The edit-check loop the revision layer buys: after one row of D changes,
// re-verifying the protocol should cost the handful of D-reading
// invariants, not a from-scratch re-solve plus the full 61-invariant
// suite. full-rebuild is that from-scratch baseline; noop-revision prices
// the pure revision machinery (diff all tables, skip everything);
// single-row-edit is the workload the layer exists for.

// deltaPipeline is a private generated pipeline for the delta benchmarks,
// which mutate controller tables and must not corrupt the shared fixture.
var (
	deltaOnce sync.Once
	deltaPipe *core.Pipeline
	deltaErr  error
)

func deltaPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	deltaOnce.Do(func() {
		p := core.New()
		if err := p.Generate(); err != nil {
			deltaErr = err
			return
		}
		deltaPipe = p
	})
	if deltaErr != nil {
		b.Fatal(deltaErr)
	}
	return deltaPipe
}

func BenchmarkDeltaRecheck(b *testing.B) {
	p := deltaPipeline(b)
	suite := check.ProtocolSuite()
	opts := check.Options{}

	b.Run("full-rebuild", func(b *testing.B) {
		specs, err := protocol.BuildAllSpecs()
		if err != nil {
			b.Fatal(err)
		}
		spec := specs[protocol.DirectoryTable]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _, err := constraint.Solve(spec)
			if err != nil {
				b.Fatal(err)
			}
			p.DB.PutTable(d)
			results := suite.Run(p.DB, opts)
			if check.Summarize(results).Errors != 0 {
				b.Fatal("invariant errors")
			}
		}
	})

	b.Run("noop-revision", func(b *testing.B) {
		rev := p.DB.BeginRevision()
		prev := suite.Run(p.DB, opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := rev.Commit()
			prev = suite.RunDelta(p.DB, prev, d, opts)
		}
	})

	b.Run("single-row-edit", func(b *testing.B) {
		tab := p.DB.MustTable(protocol.DirectoryTable)
		col := tab.ColumnsRef()[0]
		// Two distinct values of the column to flip a cell between.
		v1 := tab.At(0, 0)
		v2 := v1
		for i := 1; i < tab.NumRows(); i++ {
			if !tab.At(i, 0).Equal(v1) {
				v2 = tab.At(i, 0)
				break
			}
		}
		if v2.Equal(v1) {
			b.Fatal("column 0 of D is constant; pick another edit target")
		}
		rev := p.DB.BeginRevision()
		prev := suite.Run(p.DB, opts)
		vals := [2]rel.Value{v1, v2}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tab.Set(0, col, vals[(i+1)%2]); err != nil {
				b.Fatal(err)
			}
			d := rev.Commit()
			prev = suite.RunDelta(p.DB, prev, d, opts)
		}
		b.StopTimer()
		// Leave D as generated for any benchmark running after this one.
		if err := tab.Set(0, col, v1); err != nil {
			b.Fatal(err)
		}
	})
}
