// Randomtest contrasts the paper's motivation (§1): "protocol testing does
// not begin until very late in the development cycle". A subtle bug is
// seeded into the debugged directory table — a readex completion that adds
// the new owner to the presence vector instead of replacing it, so stale
// sharers survive an exclusive grant. Static SQL checking flags it
// instantly; random simulation testing needs the right interleaving to
// stumble over it.
package main

import (
	"fmt"
	"log"
	"time"

	"coherdb/internal/check"
	"coherdb/internal/core"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/sim"
)

func main() {
	p := core.New()
	if err := p.Generate(); err != nil {
		log.Fatal(err)
	}

	// Seed the bug: the upgrade grant forgets the ownership transfer (inc
	// instead of repl), leaving the invalidated old sharers in the
	// presence vector. Exposing it dynamically needs a line shared by
	// several caches followed by an upgrade — a corner interleaving.
	d := p.DB.MustTable(protocol.DirectoryTable)
	bad := d.Clone()
	seeded := 0
	for i := 0; i < bad.NumRows(); i++ {
		if bad.Get(i, "locmsg").Equal(rel.S("upgack")) {
			if err := bad.Set(i, "nxtdirpv", rel.S(protocol.PVInc)); err != nil {
				log.Fatal(err)
			}
			seeded++
		}
	}
	fmt.Printf("seeded ownership-transfer bug into %d row(s) of D\n\n", seeded)
	p.DB.PutTable(bad)

	// 1. Static detection: one pass over the invariant suite.
	start := time.Now()
	results := check.ProtocolSuite().Run(p.DB, check.Options{})
	staticTime := time.Since(start)
	fmt.Printf("static SQL checking (%v, before any implementation exists):\n", staticTime.Round(time.Microsecond))
	for _, r := range results {
		if r.Err == nil && !r.Passed() {
			fmt.Printf("  invariant %q violated; the offending row:\n", r.Invariant.Name)
			fmt.Print(indent(r.Violations.String()))
		}
	}
	fmt.Println()

	// 2. Dynamic detection: random workloads until a coherence violation
	// shows up in the final state.
	tables := sim.Tables{
		D: bad,
		M: p.DB.MustTable(protocol.MemoryTable),
		C: p.DB.MustTable(protocol.CacheTable),
		N: p.DB.MustTable(protocol.NodeTable),
	}
	v, err := protocol.BuildAssignment(protocol.AssignFixed)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	totalOps := 0
	for seed := int64(1); seed <= 200; seed++ {
		sys, err := sim.RandomSystem(tables, v, sim.RandomConfig{
			Nodes: 3, Addrs: 2, OpsPerNode: 10, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			// The testbench assertion fires on a symptom — a message the
			// (buggy) tables cannot handle — far from the root cause.
			fmt.Printf("random testing: symptom first hit at trial %d after %d completed ops:\n", seed, totalOps)
			fmt.Printf("  %v\n", err)
			fmt.Println("  (a symptom at the directory's response handling; the defect is in the upgrade grant row)")
			return
		}
		totalOps += res.Stats.OpsCompleted
		if viol := sys.CheckCoherence(); len(viol) > 0 {
			fmt.Printf("random testing: incoherent final state at trial %d after %d ops (%v)\n",
				seed, totalOps, time.Since(start).Round(time.Millisecond))
			fmt.Printf("  violation: %v\n", viol[0])
			return
		}
	}
	fmt.Printf("random testing: bug NOT exposed in 200 trials / %d ops (%v)\n",
		totalOps, time.Since(start).Round(time.Millisecond))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
