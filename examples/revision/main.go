// Revision walks the maintenance loop of §6 ("a total of 8 controller
// database tables were automatically generated, updated and maintained
// throughout the development cycle... went through several revisions"):
// a spec file is loaded and solved, an architect revises one column
// constraint, the regenerated table is diffed against the previous
// revision keyed on the input columns, and the static checks are re-run —
// catching a revision that breaks an invariant before it ships.
package main

import (
	"fmt"
	"log"
	"os"

	"coherdb/internal/constraint"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
	"coherdb/internal/specfile"
	"coherdb/internal/sqlmini"
)

func main() {
	path := "specs/readex.spec"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	rev1, err := specfile.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	protocol.RegisterFuncs(rev1.Spec.RegisterFunc)
	t1, _, err := constraint.Solve(rev1.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revision 1: %d rows\n", t1.NumRows())

	// The architect revises the completion behaviour: ownership is now
	// (incorrectly) accumulated instead of transferred.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	rev2, err := specfile.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	protocol.RegisterFuncs(rev2.Spec.RegisterFunc)
	if err := rev2.Spec.Constrain("nxtdirpv",
		`(inmsg = data and dirst = Busy-d) or (inmsg = idone and dirst = Busy-s) ?
		 nxtdirpv = dec :
		 inmsg = idone and dirst = Busy-sd ? nxtdirpv = dec : nxtdirpv = NULL`); err != nil {
		log.Fatal(err)
	}
	t2, _, err := constraint.Solve(rev2.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revision 2: %d rows (constraint for nxtdirpv revised)\n\n", t2.NumRows())

	// Diff the revisions keyed on the input columns.
	d, err := rel.DiffByKey(t1, t2.SetName(t1.Name()), rev1.Spec.InputNames())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("keyed diff of the revisions:")
	if err := d.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Re-run the spec's static checks against the revised table: the
	// revision broke the ownership-transfer check.
	db := sqlmini.NewDB()
	protocol.RegisterFuncs(db.Register)
	db.PutTable(t2)
	fmt.Println("\nre-running the spec's static checks on revision 2:")
	for _, inv := range rev2.Checks {
		empty, err := db.QueryEmpty(inv.SQL)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !empty {
			status = "VIOLATED — revision rejected"
		}
		fmt.Printf("  %-32s %s\n", inv.Name, status)
	}
}
