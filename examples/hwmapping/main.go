// Hwmapping demonstrates §5: the debugged directory table is extended with
// the Fig. 5 queue statuses and feedback path, partitioned with SQL into
// the nine implementation tables, verified by reconstruction, and turned
// into controller code.
package main

import (
	"fmt"
	"log"
	"strings"

	"coherdb/internal/core"
	"coherdb/internal/hwmap"
)

func main() {
	p := core.New()
	if err := p.Generate(); err != nil {
		log.Fatal(err)
	}
	if err := p.MapToHardware(); err != nil {
		log.Fatal(err)
	}
	m := p.Report.Mapping

	d := p.DB.MustTable("D")
	fmt.Printf("D:  %d rows x %d cols\n", d.NumRows(), d.NumCols())
	fmt.Printf("ED: %d rows x %d cols (split on Qstatus/Dqstatus, plus the Dfdback rows)\n\n",
		m.Extended.NumRows(), m.Extended.NumCols())

	fmt.Println("the nine implementation tables (one per controller output):")
	for i, t := range m.Tables {
		fmt.Printf("  %-16s %4d rows\n", hwmap.ImplementationTableNames()[i], t.NumRows())
	}

	rec, err := m.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstruction: %d rows reassembled; contains ED: verified\n", rec.NumRows())

	// A taste of the generated code.
	var sb strings.Builder
	if err := hwmap.GenerateGo(&sb, "dctrl", m); err != nil {
		log.Fatal(err)
	}
	hwmap.GenerateGoKeyHelper(&sb)
	lines := strings.SplitN(sb.String(), "\n", 30)
	fmt.Println("\ngenerated Go controller (first lines):")
	for _, l := range lines[:25] {
		fmt.Println("  " + l)
	}
	fmt.Printf("  ... (%d bytes total)\n", sb.Len())
}
