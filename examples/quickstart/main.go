// Quickstart: generate the directory controller table from its SQL column
// constraints, look at the published Fig. 3 readex rows, and run the §4.3
// invariants — the paper's methodology in thirty lines of API.
package main

import (
	"fmt"
	"log"
	"os"

	"coherdb/internal/check"
	"coherdb/internal/core"
	"coherdb/internal/protocol"
	"coherdb/internal/rel"
)

func main() {
	// 1. Generate all eight controller tables from their constraint
	// specifications (table schemas + SQL column constraints).
	p := core.New()
	if err := p.Generate(); err != nil {
		log.Fatal(err)
	}
	d := p.DB.MustTable(protocol.DirectoryTable)
	fmt.Printf("table D generated: %d rows x %d columns, %d busy states\n\n",
		d.NumRows(), d.NumCols(), len(protocol.BusyStates()))

	// 2. The Fig. 3 fragment: the readex transaction rows of D.
	readex := d.Select(func(r rel.Row) bool {
		return r.Get("inmsg").Equal(rel.S("readex")) && r.Get("bdirhit").Equal(rel.S("miss"))
	})
	slim, err := readex.Project("inmsg", "dirst", "dirpv", "locmsg", "remmsg", "memmsg", "nxtbdirst", "nxtdirpv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 — the readex rows of D:")
	fmt.Print(slim.SetName("D (readex)").String())

	// 3. Check the paper's §4.3 invariants with plain SQL.
	fmt.Println("\nthe two invariants published in §4.3, as SQL:")
	for _, sql := range []string{
		`SELECT dirst, dirpv FROM D WHERE
			(dirst = 'MESI' AND NOT dirpv = 'one') OR
			(dirst = 'SI' AND NOT dirpv = 'gone') OR
			(dirst = 'I' AND NOT dirpv = 'zero')`,
		`SELECT dirst, bdirst FROM D WHERE NOT dirst = 'I' AND NOT bdirst = 'I'`,
	} {
		p.DB.SetStrictNulls(true)
		empty, err := p.DB.QueryEmpty(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%v = empty] %s\n", empty, oneLine(sql))
		if !empty {
			os.Exit(1)
		}
	}

	// 4. And the whole ~50-invariant suite.
	results := check.ProtocolSuite().Run(p.DB, check.Options{})
	fmt.Printf("\nfull static check: %s\n", check.Summarize(results))
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			if !space {
				out = append(out, ' ')
			}
			space = true
			continue
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}
