// Deadlockhunt walks the §4.2 narrative end to end: the initial 4-channel
// assignment is riddled with directory/memory cycles; adding VC4 leaves
// exactly the published Fig. 4 VC2/VC4 deadlock, found by composing the
// memory controller's wb->compl row with the directory's idone->mread row
// under the quad placement L≠H=R; routing the memory requests over a
// dedicated path (plus a completion channel) makes the graph acyclic.
// Finally the same deadlock is replayed dynamically in the simulator.
package main

import (
	"fmt"
	"log"

	"coherdb/internal/core"
	"coherdb/internal/deadlock"
	"coherdb/internal/protocol"
	"coherdb/internal/sim"
)

func main() {
	p := core.New()
	if err := p.Generate(); err != nil {
		log.Fatal(err)
	}
	tables, err := p.ControllerTables()
	if err != nil {
		log.Fatal(err)
	}

	// Static analysis across the three assignments.
	for _, name := range protocol.AssignmentNames() {
		v, err := protocol.BuildAssignment(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := deadlock.Analyze(tables, v, deadlock.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== assignment %q: %d cycles ==\n", name, len(rep.Cycles))
		for _, c := range rep.Cycles {
			fmt.Printf("   %s\n", c)
		}
		if name == protocol.AssignVC4 {
			// Show the Fig. 4 evidence: the composed R3 row on VC4.
			for _, ev := range rep.Graph.Evidence(deadlock.Edge{From: "VC4", To: "VC4"}) {
				if ev.In.M == "wb" && ev.Out.M == "mread" {
					fmt.Printf("   Fig. 4 R3: %s\n", ev)
				}
			}
		}
		fmt.Println()
	}

	// Dynamic replay: the same scenario frozen and fixed.
	simTables := sim.Tables{
		D: p.DB.MustTable(protocol.DirectoryTable),
		M: p.DB.MustTable(protocol.MemoryTable),
		C: p.DB.MustTable(protocol.CacheTable),
		N: p.DB.MustTable(protocol.NodeTable),
	}
	for _, name := range []string{protocol.AssignVC4, protocol.AssignFixed} {
		res, err := sim.RunFigure4(simTables, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated Fig. 4 under %q: %s\n", name, res.Outcome)
		if res.Outcome == sim.Deadlocked {
			fmt.Printf("%s", res.Blockage)
		}
	}
}
